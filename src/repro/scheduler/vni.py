"""Slingshot Virtual Network Identifier (VNI) allocation (paper §3.4.2).

Slurm integrates with the Slingshot software to hand every job step a
unique VNI; the fabric tags and filters traffic by VNI so applications
cannot see (or disturb, beyond congestion) each other's traffic.  This is
a plain resource allocator with the isolation invariant tested in the
suite: no two live steps ever share a VNI.
"""

from __future__ import annotations

from repro.errors import SchedulerError

__all__ = ["VniAllocator"]


class VniAllocator:
    """Allocates VNIs from a fixed range, reusing released ones."""

    def __init__(self, low: int = 1, high: int = 65535):
        if not 0 < low <= high:
            raise SchedulerError("invalid VNI range")
        self.low = low
        self.high = high
        self._next = low
        self._free: list[int] = []
        self._live: dict[int, str] = {}

    @property
    def capacity(self) -> int:
        return self.high - self.low + 1

    @property
    def live_count(self) -> int:
        return len(self._live)

    def allocate(self, owner: str) -> int:
        """Grab a VNI for a job step; raises when the range is exhausted."""
        if self._free:
            vni = self._free.pop()
        elif self._next <= self.high:
            vni = self._next
            self._next += 1
        else:
            raise SchedulerError("VNI range exhausted")
        self._live[vni] = owner
        return vni

    def release(self, vni: int) -> None:
        if vni not in self._live:
            raise SchedulerError(f"VNI {vni} is not allocated")
        del self._live[vni]
        self._free.append(vni)

    def owner(self, vni: int) -> str:
        try:
            return self._live[vni]
        except KeyError:
            raise SchedulerError(f"VNI {vni} is not allocated") from None

    def isolated(self, vni_a: int, vni_b: int) -> bool:
        """Two steps are isolated iff their VNIs differ (fabric filtering)."""
        return vni_a != vni_b
