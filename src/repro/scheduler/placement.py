"""Topology-aware job placement (paper §3.4.2).

Slurm on Frontier is dragonfly-aware:

* **small jobs** (fitting one group's 128 nodes) are *packed* tightly into
  a single group to keep traffic off the tapered global links;
* **large jobs** are *spread* evenly over as many groups as possible to
  maximise the number of global links (and hence global bandwidth)
  reachable by minimal routing.

:func:`place_job` implements both policies plus the AUTO rule that picks
between them the way the paper describes, and :func:`allocation_stats`
computes the network consequences (groups spanned, per-node global
bandwidth available to minimal routing).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro import obs
from repro.errors import PlacementError
from repro.fabric.dragonfly import DragonflyConfig

__all__ = ["PlacementPolicy", "place_job", "allocation_stats", "AllocationStats"]

NODES_PER_GROUP = 128  # 32 switches x 16 endpoints / 4 NICs per node


class PlacementPolicy(enum.Enum):
    PACK = "pack"
    SPREAD = "spread"
    AUTO = "auto"       # Slurm's behaviour: pack small, spread large


def _group_of(node: int, nodes_per_group: int) -> int:
    return node // nodes_per_group


def place_job(n_nodes: int, free_nodes: set[int],
              policy: PlacementPolicy = PlacementPolicy.AUTO,
              nodes_per_group: int = NODES_PER_GROUP) -> list[int]:
    """Choose ``n_nodes`` from ``free_nodes`` according to the policy.

    Returns a sorted node list; raises :class:`PlacementError` when the
    request cannot be satisfied.
    """
    if n_nodes < 1:
        raise PlacementError("job must request at least one node")
    if n_nodes > len(free_nodes):
        raise PlacementError(
            f"requested {n_nodes} nodes but only {len(free_nodes)} are free")
    if policy is PlacementPolicy.AUTO:
        policy = (PlacementPolicy.PACK if n_nodes <= nodes_per_group
                  else PlacementPolicy.SPREAD)
    obs.counter("scheduler.placement_decisions").inc()
    obs.counter(f"scheduler.placements.{policy.value}").inc()

    by_group: dict[int, list[int]] = {}
    for node in free_nodes:
        by_group.setdefault(_group_of(node, nodes_per_group), []).append(node)
    for nodes in by_group.values():
        nodes.sort()

    if policy is PlacementPolicy.PACK:
        # Fill the emptiest-sufficient groups first: prefer a single group
        # that can hold the whole job, else fill fullest-free-first to
        # minimise the number of groups spanned.
        chosen: list[int] = []
        groups = sorted(by_group.values(), key=len, reverse=True)
        single = [g for g in groups if len(g) >= n_nodes]
        if single:
            # tightest fit: smallest group that still fits
            best = min(single, key=len)
            return sorted(best[:n_nodes])
        for nodes in groups:
            take = min(len(nodes), n_nodes - len(chosen))
            chosen.extend(nodes[:take])
            if len(chosen) == n_nodes:
                return sorted(chosen)
        raise PlacementError("internal: insufficient nodes after grouping")

    # SPREAD: round-robin one node at a time from every group with capacity.
    chosen = []
    cursors = {g: 0 for g in by_group}
    while len(chosen) < n_nodes:
        progressed = False
        for g in sorted(by_group):
            if len(chosen) == n_nodes:
                break
            nodes = by_group[g]
            if cursors[g] < len(nodes):
                chosen.append(nodes[cursors[g]])
                cursors[g] += 1
                progressed = True
        if not progressed:
            raise PlacementError("internal: spread placement stalled")
    return sorted(chosen)


@dataclass(frozen=True)
class AllocationStats:
    """Network-facing properties of a node allocation."""

    n_nodes: int
    groups_spanned: int
    max_nodes_in_group: int
    intra_group_fraction: float        # of all node pairs
    global_bandwidth_per_node: float   # bytes/s reachable by minimal routing

    @property
    def is_single_group(self) -> bool:
        return self.groups_spanned == 1


def allocation_stats(nodes: list[int], config: DragonflyConfig | None = None,
                     nodes_per_group: int = NODES_PER_GROUP) -> AllocationStats:
    """Compute the placement quality metrics the paper's policy optimises.

    ``config`` accepts anything :func:`repro.core.scenario.resolve_dragonfly`
    does — a :class:`DragonflyConfig`, a ``MachineSpec``, a machine, or
    ``None`` for the canonical Frontier fabric.
    """
    if not nodes:
        raise PlacementError("empty allocation")
    # Lazy: repro.core.scenario is downstream of the scheduler package in
    # the import graph (core.machine imports scheduler.slurm).
    from repro.core.scenario import resolve_dragonfly
    cfg = resolve_dragonfly(config)
    counts = Counter(_group_of(n, nodes_per_group) for n in nodes)
    n = len(nodes)
    groups = len(counts)
    # Fraction of distinct node pairs landing in the same group.
    same = sum(c * (c - 1) for c in counts.values())
    intra = same / (n * (n - 1)) if n > 1 else 1.0
    # Global links usable by minimal routing: links between the job's own
    # groups, plus links toward the rest of the fabric for non-minimal use
    # are not counted here (that is the point of spreading).
    link = cfg.link_rate * cfg.global_links_per_pair
    usable = groups * (groups - 1) // 2 * link
    per_node = usable * 2 / n if n > 0 else 0.0  # both directions of each pair
    return AllocationStats(n_nodes=n, groups_spanned=groups,
                           max_nodes_in_group=max(counts.values()),
                           intra_group_fraction=intra,
                           global_bandwidth_per_node=per_node)
