"""Benchmark-session observability wiring.

Every ``pytest benchmarks/`` session runs with :mod:`repro.obs` enabled:

* at session start, :func:`repro.obs.probes.record_machine_context` runs
  the deterministic probe suite once, so the exported document always
  carries spans and counters from the fabric, MPI, storage, and scheduler
  layers — a machine "fingerprint" every run can be diffed against;
* at session end the accumulated spans + metrics are written atomically
  to ``benchmarks/out/metrics.json``, the artifact CI uploads and the
  perf-regression gate's sibling.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs.export import export_state, write_json
from repro.obs.probes import record_machine_context

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
METRICS_PATH = os.path.join(OUT_DIR, "metrics.json")


@pytest.fixture(scope="session", autouse=True)
def _observability(request):
    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    record_machine_context()
    yield
    doc = export_state(
        obs.tracer(), obs.registry(),
        context={"harness": "pytest-benchmarks",
                 "args": list(request.config.invocation_params.args)})
    path = write_json(METRICS_PATH, doc)
    print(f"\n[observability] spans+metrics saved to {path}")
    if not was_enabled:
        obs.disable()
