"""Scenario service — batched throughput, cache latency, overload shape.

The service (:mod:`repro.serve`) exists so interactive studies stop
paying one Python interpreter + one model evaluation per question.  This
bench measures the three claims behind it:

* **batching** — 64 concurrent TCP clients against one in-process
  service must beat the per-request cold CLI (``python -m repro query
  --local`` in a fresh interpreter) by >= 5x on requests/second;
* **caching** — re-asking an identical spec must come back >= 50x faster
  than the cold evaluation (the answer is served from the sweep ledger
  cache without touching a probe);
* **backpressure** — at 2x queue oversubscription on a deliberately slow
  probe, the overflow is shed immediately with structured 429 errors and
  the p99 latency of the *accepted* requests stays bounded by the work
  actually queued, not by the offered load.

Correctness (batch formation, coalescing, ledger round-trips, drain
semantics) is pinned by ``tests/serve/``; this file only measures speed
and overload shape.
"""

import asyncio
import os
import subprocess
import sys
import tempfile
import time

from repro.core.scenario import frontier_spec
from repro.reporting import Table
from repro.serve import (ScenarioRequest, ScenarioService, ServeConfig,
                         query)

from _harness import save_artifact

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CONCURRENCY = 64
COLD_CLI_SAMPLES = 4
CACHE_HITS = 20
MIN_BATCH_SPEEDUP = 5.0
MIN_CACHE_SPEEDUP = 50.0

SPEC = frontier_spec().scaled(6, 4, 4)


def _request(seed, rid="", probe="storage", timeout_s=None):
    return ScenarioRequest(probe=probe, spec=SPEC, seed=seed, id=rid,
                           timeout_s=timeout_s)


def _cold_cli_rate():
    """Requests/second for the no-service path: one interpreter, one
    model evaluation, one answer — what every question costs without
    ``repro.serve``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    argv = [sys.executable, "-m", "repro", "query", "--local",
            "--probe", "storage", "--scaled", "6", "4", "4"]
    t0 = time.perf_counter()
    for i in range(COLD_CLI_SAMPLES):
        proc = subprocess.run(argv + ["--seed", str(i)], cwd=REPO_ROOT,
                              env=env, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
    return COLD_CLI_SAMPLES / (time.perf_counter() - t0)


def _served_rate(out_dir):
    """Requests/second for 64 concurrent TCP clients, one distinct
    request each, against a single batching service."""
    async def run():
        service = ScenarioService(ServeConfig(
            workers=0, out_dir=out_dir, batch_window_s=0.02,
            max_batch=CONCURRENCY, queue_depth=4 * CONCURRENCY))
        await service.start()
        server = await service.serve_tcp()
        host, port = server.sockets[0].getsockname()[:2]
        t0 = time.perf_counter()
        answers = await asyncio.gather(*[
            query(host, port, [_request(seed=i, rid=f"q{i}")])
            for i in range(CONCURRENCY)])
        elapsed = time.perf_counter() - t0
        server.close()
        await server.wait_closed()
        await service.drain()
        flat = [r for batch in answers for r in batch]
        assert len(flat) == CONCURRENCY
        assert all(r.ok for r in flat)
        return CONCURRENCY / elapsed, max(r.batch_size for r in flat)

    return asyncio.run(run())


def _cache_speedup(out_dir):
    """Cold evaluation time vs the mean warm (cached) answer time for
    the identical spec, in-process so the ratio measures the cache, not
    the socket."""
    async def run():
        service = ScenarioService(ServeConfig(
            workers=0, out_dir=out_dir, batch_window_s=60.0))
        await service.start()
        t0 = time.perf_counter()
        fut = service.submit(_request(seed=0, probe="mpigraph"))
        await service.flush()
        cold_response = await fut
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(CACHE_HITS):
            warm_response = await service.submit(
                _request(seed=0, probe="mpigraph"))
            assert warm_response.cached
            assert warm_response.values == cold_response.values
        warm_s = (time.perf_counter() - t0) / CACHE_HITS
        await service.drain()
        return cold_s, warm_s

    return asyncio.run(run())


def _overload_shape(out_dir):
    """2x queue oversubscription on a slow probe: sheds are immediate
    structured 429s; accepted-request p99 is bounded by the queue."""
    depth, offered, sleep_s = 16, 32, 0.05
    os.environ["REPRO_SWEEP_SLEEP_S"] = str(sleep_s)
    try:
        async def run():
            service = ScenarioService(ServeConfig(
                workers=0, out_dir=out_dir, batch_window_s=60.0,
                queue_depth=depth, max_batch=depth))
            await service.start()
            t0 = time.perf_counter()
            futs = [service.submit(_request(seed=i, probe="sleepy"))
                    for i in range(offered)]
            shed_immediately = sum(1 for f in futs if f.done())
            await service.flush()
            responses = await asyncio.gather(*futs)
            elapsed = time.perf_counter() - t0
            await service.drain()
            return responses, shed_immediately, elapsed

        responses, shed_immediately, elapsed = asyncio.run(run())
    finally:
        del os.environ["REPRO_SWEEP_SLEEP_S"]
    shed = [r for r in responses if r.status == "shed"]
    served = [r for r in responses if r.ok]
    assert len(served) == depth and len(shed) == offered - depth
    assert shed_immediately == len(shed), "sheds must not wait in line"
    assert all(r.error["code"] == 429 for r in shed)
    assert all(r.error["type"] == "Overloaded" for r in shed)
    # p99 of what was accepted: bounded by the queued work (depth
    # sleeps, inline), with generous headroom — never by offered load.
    p99_budget = 4.0 * depth * sleep_s
    assert elapsed <= p99_budget, (
        f"accepted-request tail {elapsed:.2f}s exceeds {p99_budget:.2f}s")
    return len(shed), elapsed, p99_budget


def _measure():
    with tempfile.TemporaryDirectory() as tmp:
        cold_rate = _cold_cli_rate()
        served_rate, max_batch = _served_rate(os.path.join(tmp, "a"))
        cold_s, warm_s = _cache_speedup(os.path.join(tmp, "b"))
        sheds, tail_s, budget_s = _overload_shape(os.path.join(tmp, "c"))
    return {
        "cold_cli_rps": cold_rate,
        "served_rps": served_rate,
        "throughput_x": served_rate / cold_rate,
        "max_batch": max_batch,
        "cache_cold_ms": cold_s * 1e3,
        "cache_warm_ms": warm_s * 1e3,
        "cache_x": cold_s / warm_s,
        "sheds": sheds,
        "overload_tail_s": tail_s,
        "overload_budget_s": budget_s,
    }


def test_serve_throughput(benchmark):
    r = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(["arm", "metric", "value"],
                  title="Scenario service vs per-request cold CLI",
                  float_fmt="{:.2f}")
    table.add_row(["cold CLI", "requests/s", r["cold_cli_rps"]])
    table.add_row(["served (64 clients)", "requests/s", r["served_rps"]])
    table.add_row(["served (64 clients)", "largest batch", r["max_batch"]])
    table.add_row(["batching", "speedup vs cold CLI", r["throughput_x"]])
    table.add_row(["cache", "cold answer ms", r["cache_cold_ms"]])
    table.add_row(["cache", "warm answer ms", r["cache_warm_ms"]])
    table.add_row(["cache", "speedup", r["cache_x"]])
    table.add_row(["overload 2x", "sheds (429)", r["sheds"]])
    table.add_row(["overload 2x", "accepted tail s", r["overload_tail_s"]])
    table.add_row(["overload 2x", "tail budget s", r["overload_budget_s"]])
    save_artifact("serve_throughput", table.render())

    assert r["throughput_x"] >= MIN_BATCH_SPEEDUP, \
        "batched service no longer >= 5x the per-request cold CLI"
    assert r["max_batch"] > 1, "64 concurrent clients formed no batch"
    assert r["cache_x"] >= MIN_CACHE_SPEEDUP, \
        "cached answer no longer >= 50x faster than cold evaluation"
