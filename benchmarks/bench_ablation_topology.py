"""Ablation — dragonfly vs non-blocking fat tree at matched scale.

The paper (§4.2.2) explains HPE's trade: a dragonfly needs ~50% fewer
ports and cables than a Clos and behaves like a ~2:1 oversubscribed fat
tree.  This bench quantifies both sides on materialised reduced-scale
fabrics with the same endpoint count and link rate: the dragonfly wins on
cost (ports/cables) and on nearest-neighbour traffic; the Clos wins on
worst-case global traffic.
"""

import numpy as np

from repro.fabric.dragonfly import DragonflyConfig, build_dragonfly
from repro.fabric.fattree import FatTreeConfig, build_fattree
from repro.fabric.network import FatTreeNetwork, SlingshotNetwork
from repro.fabric.topology import LinkKind
from repro.reporting import Table

from _harness import save_artifact

#: Matched scale: 128 endpoints, 25 GB/s links.
DF_CFG = DragonflyConfig().scaled(8, 4, 4)
FT_CFG = FatTreeConfig(edge_switches=16, endpoints_per_edge=8,
                       link_rate=25e9)


def _cable_count(topo) -> int:
    return topo.n_links // 2   # both directions share a cable


def test_port_and_cable_cost(benchmark):
    def build():
        return build_dragonfly(DF_CFG), build_fattree(FT_CFG)

    df, ft = benchmark.pedantic(build, rounds=2, iterations=1)
    df_sw_cables = sum(1 for link in df.links
                       if link.kind is not LinkKind.L0) // 2
    ft_sw_cables = sum(1 for link in ft.links
                       if link.kind is not LinkKind.L0) // 2
    save_artifact("ablation_topology_cost",
                  f"dragonfly switch-switch cables: {df_sw_cables}\n"
                  f"fat-tree switch-switch cables:  {ft_sw_cables}\n"
                  f"dragonfly switches: {df.n_switches}\n"
                  f"fat-tree switches:  {ft.n_switches}")
    # the dragonfly's selling point: fewer cables for the same endpoints
    assert df_sw_cables < ft_sw_cables


def test_traffic_pattern_tradeoff(benchmark):
    df_net = SlingshotNetwork(DF_CFG)
    ft_net = FatTreeNetwork(FT_CFG)

    def run():
        out = {}
        for name, net in (("dragonfly", df_net), ("fattree", ft_net)):
            near = np.mean([f.bandwidth for f in net.shift_pattern(1)])
            far = np.mean([f.bandwidth for f in net.shift_pattern(
                net.config.total_endpoints // 2)])
            out[name] = (near / 1e9, far / 1e9)
        return out

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    table = Table(["topology", "neighbour GB/s", "global GB/s"],
                  title="Ablation: topology vs traffic pattern",
                  float_fmt="{:.2f}")
    for name, (near, far) in results.items():
        table.add_row([name, near, far])
    save_artifact("ablation_topology_traffic", table.render())
    # Clos: flat. Dragonfly: great near, tapered far — Figure 6's story.
    df_near, df_far = results["dragonfly"]
    ft_near, ft_far = results["fattree"]
    assert abs(ft_near - ft_far) / ft_near < 0.05
    assert df_near > ft_near * 0.95
    assert df_far < df_near
