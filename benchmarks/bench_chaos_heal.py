"""Self-healing chaos loop — spare pools + adaptive checkpointing gates.

The healing policy (:mod:`repro.chaos.heal`) makes two quantitative
claims, both asserted here on the pinned 32-node validation scenario:

* **Spare pools beat cancel-and-requeue.**  With the workload sized to
  usable capacity, backfilling victims from a topology-close spare pool
  must *strictly* improve fleet job availability over the
  requeue-until-repair baseline whenever failures are accelerated
  (FIT scale >= 2x) — and the measured replacement count must be doing
  the work, not slack.

* **Measurement beats a mis-modeled prior.**  When the operator's
  failure model is wrong (``adaptive_prior_scale`` != the live
  ``failure_scale``), the adaptive controller's measured efficiency
  must beat the fixed interval computed from that wrong prior; and when
  the model is *right*, the controller must converge onto the analytic
  Daly optimum (interval ratios within ±10%) rather than wandering.
"""

from repro.chaos import INTERVAL_TOLERANCE, cross_validate_heal
from repro.reporting import ComparisonRow

from _harness import check_rows, save_artifact


def test_healing_improves_availability(benchmark):
    """Spare-pool healing strictly beats requeue at FIT scale >= 2x.

    ``cross_validate_heal`` runs its spare arm at 600x FIT; the claim
    must already hold at far gentler acceleration, so the assertion is
    strict inequality plus a nonzero replacement count (availability
    gained by idle slack instead of actual healing would be a bug).
    """
    report = benchmark(cross_validate_heal, seed=0)
    assert report.enough_events, (
        f"only {report.interrupts} interrupts; the gate needs >= 200")
    assert report.replacements > 0
    assert report.healed_availability > report.baseline_availability, (
        f"healing did not improve availability: "
        f"{report.baseline_availability:.4f} -> "
        f"{report.healed_availability:.4f}")
    summary = "\n".join([
        f"interrupts: {report.interrupts}",
        f"replacements: {report.replacements}",
        f"requeues: {report.requeues}",
        f"replenished: {report.replenished}",
        f"job availability (requeue): {report.baseline_availability:.4f}",
        f"job availability (spares):  {report.healed_availability:.4f}",
        f"delta: {report.healed_availability - report.baseline_availability:+.4f}",
    ])
    save_artifact("chaos_heal_availability", summary)


def test_adaptive_converges_to_daly_optimum(benchmark):
    """Measured == modeled: steady-state intervals within ±10% of Daly."""
    report = benchmark(cross_validate_heal, seed=0)
    rows = [ComparisonRow(f"job{i} interval ratio", paper=1.0,
                          measured=ratio)
            for i, ratio in enumerate(report.interval_ratios)]
    text = check_rows(
        rows, INTERVAL_TOLERANCE,
        "Adaptive checkpointing: steady-state interval vs Daly optimum")
    save_artifact("chaos_heal_convergence", text)
    assert report.intervals_converged


def test_adaptive_beats_fixed_under_model_mismatch(benchmark):
    """Prior off by 4x: adaptive measured efficiency beats fixed-analytic."""
    report = benchmark(cross_validate_heal, seed=0)
    assert report.adaptive_efficiency > report.fixed_efficiency, (
        f"adaptive {report.adaptive_efficiency:.4f} did not beat "
        f"fixed-analytic {report.fixed_efficiency:.4f} under a 4x "
        f"failure-model mismatch")
    summary = "\n".join([
        f"adaptive efficiency: {report.adaptive_efficiency:.4f}",
        f"fixed-analytic efficiency: {report.fixed_efficiency:.4f}",
        f"gain: {report.adaptive_efficiency - report.fixed_efficiency:+.4f}",
        f"gate passed: {report.passed}",
    ])
    save_artifact("chaos_heal_adaptive_duel", summary)
    assert report.passed
