"""Ablation — fabric failure handling: cost of losing a bundle.

The Fabric Manager (§3.4.2) sweeps, discovers failures, and pushes new
routes; traffic between groups whose direct bundle died detours over two
global hops.  This bench measures the bandwidth penalty on the affected
group pair and confirms the rest of the fabric is untouched.
"""

import numpy as np
import pytest

from repro.fabric.dragonfly import DragonflyConfig
from repro.fabric.network import SlingshotNetwork
from repro.fabric.topology import LinkKind
from repro.reporting import Table
from repro.software.fabric_manager import FabricManager

from _harness import save_artifact

CFG = DragonflyConfig().scaled(8, 4, 4)


def _bundle_pairs(net, ga, gb):
    out = set()
    for link in net.topology.links:
        if link.kind is LinkKind.L2:
            a = net.topology.group_of_switch(link.src[1])
            b = net.topology.group_of_switch(link.dst[1])
            if {a, b} == {ga, gb}:
                out.add((min(link.src[1], link.dst[1]),
                         max(link.src[1], link.dst[1])))
    return out


def _loaded_fabric_rates(net, flows_per_pair=3) -> dict[tuple[int, int], float]:
    """Mean per-flow rate for every group pair under uniform global load.

    A loaded fabric is where a bundle loss actually hurts: detoured flows
    must steal capacity that other traffic is using.
    """
    g = net.config.endpoints_per_group
    pairs = []
    tags = []
    for ga in range(net.config.groups):
        for gb in range(net.config.groups):
            if ga == gb:
                continue
            for i in range(flows_per_pair):
                pairs.append((ga * g + i, gb * g + i))
                tags.append((min(ga, gb), max(ga, gb)))
    flows, _ = net.flow_bandwidths(pairs)
    out: dict[tuple[int, int], list[float]] = {}
    for tag, flow in zip(tags, flows):
        out.setdefault(tag, []).append(flow.bandwidth)
    return {tag: float(np.mean(v)) for tag, v in out.items()}


def test_bundle_failure_penalty(benchmark):
    def run():
        net = SlingshotNetwork(CFG, rng=4)
        fm = FabricManager(net)
        fm.boot()
        healthy = _loaded_fabric_rates(net)
        for a, b in _bundle_pairs(net, 0, 1):
            fm.fail_cable(a, b)
        fm.sweep()
        degraded = _loaded_fabric_rates(net)
        return healthy, degraded, fm

    healthy, degraded, fm = benchmark.pedantic(run, rounds=1, iterations=1)
    bystanders = [p for p in healthy if p != (0, 1)]
    table = Table(["group pair", "healthy GB/s", "after bundle loss GB/s"],
                  title="Ablation: losing the (0,1) bundle, loaded fabric",
                  float_fmt="{:.2f}")
    table.add_row(["0 <-> 1 (failed)", healthy[(0, 1)] / 1e9,
                   degraded[(0, 1)] / 1e9])
    table.add_row(["others (mean)",
                   float(np.mean([healthy[p] for p in bystanders])) / 1e9,
                   float(np.mean([degraded[p] for p in bystanders])) / 1e9])
    save_artifact("ablation_fabric_failures", table.render())
    # detoured traffic survives but pays for the two-hop path under load
    assert degraded[(0, 1)] > 0
    assert degraded[(0, 1)] < healthy[(0, 1)]
    # the fabric as a whole degrades gracefully
    total_h = float(np.mean(list(healthy.values())))
    total_d = float(np.mean(list(degraded.values())))
    assert total_d > 0.75 * total_h
    assert fm.fabric_is_routable()


def test_sweep_scales_with_failures(benchmark):
    net = SlingshotNetwork(CFG, rng=5)
    fm = FabricManager(net)
    fm.boot()
    pairs = sorted(_bundle_pairs(net, 0, 2) | _bundle_pairs(net, 3, 4))
    for a, b in pairs:
        fm.fail_cable(a, b)
    handled = benchmark.pedantic(fm.sweep, rounds=1, iterations=1)
    assert handled == 2 * len(pairs)
    assert fm.degraded_global_capacity() == pytest.approx(
        len(pairs) / (CFG.groups * (CFG.groups - 1) / 2
                      * CFG.global_links_per_pair), rel=0.01)
