"""Figure 6 — mpiGraph per-NIC bandwidth histograms: Frontier vs Summit.

Three layers:

* the full-scale analytic histograms (the paper's own accounting) for the
  published shape claims — range 3 to 17.5 GB/s on Frontier with a ~1.4%
  spike at the top; a tight ~8.5 GB/s spike on Summit;
* an honest flow-level max-min simulation at reduced scale (taper
  preserved) showing the same qualitative split;
* the §4.2.2 all-to-all figure (~30-32 GB/s/node at 128 KiB, 8 PPN).
"""

import pytest

from repro.core.scenario import frontier_spec
from repro.fabric.collectives import alltoall_per_node_bandwidth
from repro.microbench.mpigraph import (frontier_mpigraph_histogram,
                                       simulate_mpigraph,
                                       summit_mpigraph_histogram)
from repro.reporting import Table

from _harness import save_artifact


def test_figure6_fullscale_histograms(benchmark):
    def build():
        return (frontier_mpigraph_histogram(samples_per_offset=2, rng=1),
                summit_mpigraph_histogram(rng=1))

    frontier, summit = benchmark.pedantic(build, rounds=2, iterations=1)
    table = Table(["quantity", "Frontier", "Summit"],
                  title="Figure 6: mpiGraph per-NIC bandwidth (GB/s)",
                  float_fmt="{:.2f}")
    table.add_row(["min", frontier.min_gbs, summit.min_gbs])
    table.add_row(["median", frontier.quantile(0.5) / 1e9,
                   summit.quantile(0.5) / 1e9])
    table.add_row(["p99.5", frontier.quantile(0.995) / 1e9,
                   summit.quantile(0.995) / 1e9])
    table.add_row(["max", frontier.max_gbs, summit.max_gbs])
    table.add_row(["max/min spread", frontier.spread, summit.spread])
    save_artifact("fig6_mpigraph", table.render())

    # Paper shape claims:
    assert frontier.min_gbs == pytest.approx(3.0, abs=0.8)      # ~3 floor
    assert frontier.quantile(0.999) / 1e9 == pytest.approx(17.5, rel=0.2)
    assert frontier.mass_above(15.0) == pytest.approx(0.014, abs=0.005)
    assert summit.quantile(0.5) / 1e9 == pytest.approx(8.5, rel=0.05)
    assert summit.spread < 1.6 < frontier.spread                # tight vs wide
    # Frontier's best pairs beat Summit's; its worst lose.
    assert frontier.max_gbs > summit.max_gbs
    assert frontier.min_gbs < summit.min_gbs


def test_figure6_flow_level_simulation(benchmark):
    net = frontier_spec().scaled(8, 4, 4).build_network()

    def run():
        return simulate_mpigraph(net, offsets=[1, 8, 16, 32, 48, 64])

    hist = benchmark.pedantic(run, rounds=2, iterations=1)
    # same qualitative split as the analytic full-scale histogram
    assert hist.max_gbs > 16.0
    assert hist.min_gbs < 6.0
    assert hist.spread > 3.0


def test_alltoall_bandwidth(benchmark):
    est = benchmark(alltoall_per_node_bandwidth)
    # "~30-32 GB/s/node (~7.5-8.0 GB/s/NIC) ... with 128 KiB messages"
    assert 28e9 <= est.per_node <= 33e9
    assert est.binding_constraint == "global"
    save_artifact("fig6_alltoall",
                  f"all-to-all per node: {est.per_node / 1e9:.1f} GB/s\n"
                  f"all-to-all per NIC:  {est.per_nic / 1e9:.2f} GB/s\n"
                  f"binding constraint:  {est.binding_constraint}")
