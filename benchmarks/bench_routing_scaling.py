"""Scaling — vectorised batch routing vs the scalar per-flow loop.

The batch planner (:meth:`repro.fabric.routing.Router.paths`) exists so
full-machine flow experiments (§3.2's mpiGraph shifts at thousands of
endpoints) stop being bottlenecked by per-flow Python routing.  This
bench measures pairs/second at several fabric sizes for three arms:

* **batch** — ``router.paths`` (adaptive chunk) and the CSR max-min path;
* **scalar** — the historical per-flow ``router.path`` loop, current solver;
* **seed reference** — the per-flow loop plus a replica of the pre-batch
  max-min filling loop (sparse ``A[saturated]`` slicing each round), i.e.
  what ``flow_bandwidths`` cost before this engine existed.

Asserts the acceptance criterion: at >= 2,048 endpoints the batch
planner routes >= 5x faster than the scalar loop, and end-to-end
``flow_bandwidths`` beats the seed-equivalent implementation >= 5x.
Equivalence (identical paths and rates at ``chunk=1``) is pinned by
``tests/fabric/test_batchroute.py``; this file only measures speed.
"""

import time

import numpy as np
from scipy import sparse

from repro.fabric.dragonfly import DragonflyConfig
from repro.fabric.maxmin import maxmin_allocate
from repro.fabric.network import SlingshotNetwork, clear_fabric_caches
from repro.fabric.routing import RoutingPolicy
from repro.reporting import Table

from _harness import save_artifact

#: (groups, switches/group, endpoints/switch) -> 128 / 1,024 / 2,048 endpoints
SCALES = [(8, 4, 4), (16, 8, 8), (16, 8, 16)]
ASSERT_AT = 2048
MIN_SPEEDUP = 5.0


def _seed_maxmin(capacities, paths, demands):
    """Replica of the pre-batch progressive filling loop (seed commit).

    Kept verbatim-in-spirit so the "seed reference" arm times the actual
    historical algorithm: dense ``A @ active`` each round and sparse
    ``A[saturated]`` slicing on every freeze event.
    """
    n_links, n_flows = len(capacities), len(paths)
    cap = np.asarray(capacities, dtype=np.float64)
    rows, cols = [], []
    for f, path in enumerate(paths):
        rows.extend(path)
        cols.extend([f] * len(path))
    A = sparse.csr_matrix((np.ones(len(rows)), (rows, cols)),
                          shape=(n_links, n_flows))
    dem = np.asarray(demands, dtype=np.float64)
    rates = np.zeros(n_flows)
    active = np.ones(n_flows, dtype=bool)
    remaining = cap.copy()
    eps = 1e-12
    for _ in range(n_links + n_flows + 1):
        if not active.any():
            break
        n_active = A @ active.astype(np.float64)
        used = n_active > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            slack = np.where(used, remaining / np.maximum(n_active, 1), np.inf)
        head_active = np.where(active, dem - rates, np.inf)
        inc = max(min(slack.min(), head_active.min()), 0.0)
        rates[active] += inc
        remaining = np.maximum(remaining - inc * n_active, 0.0)
        saturated = used & (remaining <= eps * cap)
        if saturated.any():
            touching = (A[saturated].T @ np.ones(int(saturated.sum()))) > 0
            active &= ~touching
        finite = np.isfinite(dem)
        capped = active & finite & (
            rates >= np.where(finite, dem, 0.0)
            - eps * np.where(finite, np.maximum(dem, 1.0), 1.0))
        active &= ~capped
        if inc == 0.0 and not saturated.any() and not capped.any():
            raise RuntimeError("stalled")
    else:
        raise RuntimeError("did not converge")
    return rates


def _best_of(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(scale):
    cfg = DragonflyConfig().scaled(*scale)
    clear_fabric_caches()
    net = SlingshotNetwork(cfg, policy=RoutingPolicy.UGAL, rng=1)
    n = cfg.total_endpoints
    pairs = [(i, (i + cfg.endpoints_per_group) % n) for i in range(n)]
    demands = [0.7 * cfg.link_rate] * n
    router = net.router

    def route_batch():
        router.reset_load()
        return router.paths(pairs)

    def route_scalar():
        router.reset_load()
        return [router.path(s, d) for s, d in pairs]

    def e2e_batch():
        return net.flow_bandwidths(pairs)

    def e2e_seed():
        router.reset_load()
        paths = [router.path(s, d) for s, d in pairs]
        return _seed_maxmin(net.topology.capacities(), paths, demands)

    return {
        "n": n,
        "route_batch_s": _best_of(route_batch),
        "route_scalar_s": _best_of(route_scalar),
        "e2e_batch_s": _best_of(e2e_batch),
        "e2e_seed_s": _best_of(e2e_seed),
    }


def test_batch_routing_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure(s) for s in SCALES], rounds=1, iterations=1)

    table = Table(["endpoints", "scalar kpairs/s", "batch kpairs/s",
                   "routing speedup", "e2e seed ms", "e2e batch ms",
                   "e2e speedup"],
                  title="Batch routing engine scaling (UGAL group shift)",
                  float_fmt="{:.1f}")
    for r in rows:
        table.add_row([
            r["n"],
            r["n"] / r["route_scalar_s"] / 1e3,
            r["n"] / r["route_batch_s"] / 1e3,
            r["route_scalar_s"] / r["route_batch_s"],
            r["e2e_seed_s"] * 1e3,
            r["e2e_batch_s"] * 1e3,
            r["e2e_seed_s"] / r["e2e_batch_s"],
        ])
    save_artifact("routing_scaling", table.render())

    big = next(r for r in rows if r["n"] >= ASSERT_AT)
    assert big["route_scalar_s"] / big["route_batch_s"] >= MIN_SPEEDUP, \
        "batch planner no longer >= 5x faster than the scalar loop"
    assert big["e2e_seed_s"] / big["e2e_batch_s"] >= MIN_SPEEDUP, \
        "flow_bandwidths no longer >= 5x the seed implementation"
    # Throughput must grow, not collapse, with machine size.
    per_sec = [r["n"] / r["route_batch_s"] for r in rows]
    assert per_sec[-1] > per_sec[0]
