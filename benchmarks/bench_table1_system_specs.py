"""Table 1 — Frontier compute peak specifications.

Regenerates every row of Table 1 from the component models and checks it
against the published values.  Unit note: the paper prints its two
bandwidth rows with "PiB/s" labels but the numbers are SI petabytes
(123.9 "PiB/s" = 9,472 x 13.083 TB/s = 123.9 PB/s); we compare on SI.
"""

import pytest

from repro.core.specs_table import compute_table1
from repro.reporting import ComparisonRow

from _harness import check_rows, save_artifact

#: (model key, paper value, units, tolerance)
TABLE1_PAPER = [
    ("nodes", 9472.0, "", 0.0),
    ("fp64_dgemm_EF", 2.0, "EF", 0.01),
    ("ddr4_capacity_PiB", 4.6, "PiB", 0.01),
    ("ddr4_bandwidth_PBps", 1.9, "PB/s (paper prints PiB/s)", 0.03),
    ("hbm2e_capacity_PiB", 4.6, "PiB", 0.01),
    ("hbm2e_bandwidth_PBps", 123.9, "PB/s (paper prints PiB/s)", 0.01),
    ("injection_bandwidth_GBps_per_node", 100.0, "GB/s", 0.0),
    ("global_bandwidth_TBps", 270.0, "TB/s (each direction)", 0.01),
]


def test_table1_reproduction(benchmark):
    table = benchmark(compute_table1)
    rows = [ComparisonRow(key, paper, table[key], units)
            for key, paper, units, _tol in TABLE1_PAPER]
    text = check_rows(rows, rel_tol=0.03, title="Table 1: Frontier Compute "
                      "Peak Specifications (paper vs computed)")
    save_artifact("table1_system_specs", text)
    # headline cross-checks from the surrounding text
    assert table["hbm_to_ddr_bw_ratio"] == pytest.approx(64.0, rel=0.01)
    assert table["gpu_threads_millions"] > 500.0
