"""Figure 3 — CoralGemm: peak vs achieved FP64/FP32/FP16 on one GCD.

Regenerates the figure's bar values from the GEMM execution model (size
sweep to N=16384) and times a real host DGEMM as the compute payload.
"""

import pytest

from repro.microbench.coralgemm import coralgemm_sweep
from repro.node.gemm import GemmModel, run_host_dgemm
from repro.node.gpu import Precision
from repro.reporting import ComparisonRow, Table

from _harness import check_rows, save_artifact

FIG3_PAPER = {
    "FP64": (23.95, 47.9, 33.8),
    "FP32": (23.95, 47.9, 24.1),
    "FP16": (47.9, 191.5, 111.2),
}


def test_figure3_reproduction(benchmark):
    model = GemmModel()
    fig = benchmark(model.figure3)
    rows = []
    for prec, (vec, mat, achieved) in FIG3_PAPER.items():
        rows.append(ComparisonRow(f"{prec} vector peak", vec,
                                  fig[prec]["vector_peak_tflops"], "TF/s"))
        rows.append(ComparisonRow(f"{prec} matrix peak", mat,
                                  fig[prec]["matrix_peak_tflops"], "TF/s"))
        rows.append(ComparisonRow(f"{prec} achieved", achieved,
                                  fig[prec]["achieved_tflops"], "TF/s"))
    text = check_rows(rows, rel_tol=0.01,
                      title="Figure 3: CoralGemm (paper vs model)")
    # the paper's headline: FP64/FP32 exceed the vector peak (matrix cores)
    assert fig["FP64"]["achieved_tflops"] > fig["FP64"]["vector_peak_tflops"]
    assert fig["FP32"]["achieved_tflops"] > fig["FP32"]["vector_peak_tflops"]

    sweep_table = Table(["N", "FP64 TF/s", "FP32 TF/s", "FP16 TF/s"],
                        title="Modelled CoralGemm sweep", float_fmt="{:.1f}")
    sweeps = {p: model.sweep(p) for p in (Precision.FP64, Precision.FP32,
                                          Precision.FP16)}
    for i, point in enumerate(sweeps[Precision.FP64]):
        sweep_table.add_row([point.n, point.tflops,
                             sweeps[Precision.FP32][i].tflops,
                             sweeps[Precision.FP16][i].tflops])
    save_artifact("fig3_coralgemm", text + "\n\n" + sweep_table.render())


def test_host_dgemm_payload(benchmark):
    flops, _ = benchmark(run_host_dgemm, 384, 1)
    assert flops > 0


def test_sweep_harness(benchmark):
    result = benchmark.pedantic(coralgemm_sweep,
                                kwargs={"sizes": [512, 4096, 16384],
                                        "host_n": 128},
                                rounds=2, iterations=1)
    assert result.achieved_tflops(Precision.FP64) == pytest.approx(33.8,
                                                                   rel=0.01)
