"""Figure 4 — aggregate CPU-to-GPU bandwidth, 8 ranks feeding their GCDs.

The plateau must land at the Trento STREAM rate (~180 GB/s), not at the
8 x 36 GB/s xGMI aggregate — the paper's point about DRAM being the
bottleneck for host-to-device traffic.
"""

import pytest

from repro.node.transfers import (aggregate_host_to_gcd_bandwidth,
                                  figure4_series, host_to_gcd_bandwidth)
from repro.reporting import Table

from _harness import save_artifact


def test_figure4_series(benchmark):
    series = benchmark(figure4_series)
    table = Table(["message bytes", "aggregate GB/s"],
                  title="Figure 4: 8-rank CPU->GCD bandwidth vs size",
                  float_fmt="{:.1f}")
    for size, gbs in series:
        table.add_row([size, gbs])
    save_artifact("fig4_cpu_gpu_bandwidth", table.render())
    # monotone ramp to the DRAM plateau
    values = [gbs for _, gbs in series]
    assert values == sorted(values)
    assert values[-1] == pytest.approx(179.2, rel=0.02)   # "about 180 GB/s"
    assert values[-1] < 8 * 36                             # NOT the link sum


def test_single_core_rate(benchmark):
    bw = benchmark(host_to_gcd_bandwidth, 1 << 30)
    # "we see it reach 25.5 GB/s, ~71% of the peak xGMI 2.0 bandwidth"
    assert bw == pytest.approx(25.5e9, rel=0.01)
    assert bw / 36e9 == pytest.approx(0.71, abs=0.01)


def test_rank_scaling_crossover(benchmark):
    """Between 1 and 8 ranks the bottleneck moves from link to DRAM."""

    def sweep():
        return [aggregate_host_to_gcd_bandwidth(r, 1 << 30)
                for r in (1, 2, 4, 8)]

    rates = benchmark(sweep)
    # linear while link-limited...
    assert rates[1] == pytest.approx(2 * rates[0], rel=0.01)
    # ...then saturating at DRAM
    assert rates[3] < 2 * rates[2]
