"""Table 5 — GPCNeT on 9,400 nodes: isolated vs congested, 8 and 32 PPN.

Reproduces both halves of Table 5 (the isolated and congested 8-PPN runs
are statistically identical — the congestion-control headline) and the
32-PPN degradation bands quoted in the text (avg 1.2-1.6x, p99 1.8-7.6x).
"""

import pytest

from repro.microbench.gpcnet import GpcnetConfig, run_gpcnet
from repro.reporting import ComparisonRow, Table

from _harness import check_rows, save_artifact

LAT = "RR Two-sided Lat (8 B)"
BW = "RR Two-sided BW+Sync (131072 B)"
AR = "Multiple Allreduce (8 B)"

#: Table 5 isolated rows: (average, 99%).
PAPER_ISOLATED = {LAT: (2.6, 4.8), BW: (3497.2, 2514.4), AR: (51.5, 54.1)}
PAPER_CONGESTED = {LAT: (2.6, 4.7), BW: (3472.2, 2487.0), AR: (51.6, 54.3)}


def _run_both():
    cfg = GpcnetConfig()
    return (run_gpcnet(cfg, congested=False, rng=1),
            run_gpcnet(cfg, congested=True, rng=1))


def test_table5_isolated_and_congested(benchmark):
    iso, con = benchmark(_run_both)
    rows = []
    for name, (avg, p99) in PAPER_ISOLATED.items():
        rows.append(ComparisonRow(f"isolated {name} avg", avg,
                                  iso.rows[name].average, iso.rows[name].units))
        rows.append(ComparisonRow(f"isolated {name} p99", p99,
                                  iso.rows[name].p99, iso.rows[name].units))
    for name, (avg, p99) in PAPER_CONGESTED.items():
        rows.append(ComparisonRow(f"congested {name} avg", avg,
                                  con.rows[name].average, con.rows[name].units))
    text = check_rows(rows, rel_tol=0.10,
                      title="Table 5: GPCNeT 8 PPN (paper vs simulation)")
    save_artifact("table5_gpcnet", text)
    # the headline: congested == isolated at 8 PPN (impact 1.0x)
    for metrics in con.impact_vs(iso).values():
        assert metrics["avg"] == pytest.approx(1.0, abs=0.06)


def test_dynamic_incast_arm(benchmark):
    """The time-stepped counterpart of Table 5's congestion story.

    The analytic arms above assert the *numbers*; this arm asserts the
    *mechanism* via :mod:`repro.fabric.timeflow`: the same incast run
    with and without ECN-style backpressure must show the GPCNeT shape —
    the victim's p99 latency explodes in FIFO mode and stays bounded
    (pinned near the marking threshold) under ECN.
    """
    from repro.core.scenario import frontier_spec
    from repro.fabric.timeflow import CongestConfig, run_congest

    def run_study():
        return run_congest(frontier_spec(), CongestConfig(ks=(30,)))

    doc = benchmark(run_study)
    fifo, ecn = doc["arms"]
    table = Table(["Arm", "Victim p50 us", "Victim p99 us", "Max queue MTUs"],
                  title="Dynamic incast arm (timeflow)", float_fmt="{:.2f}")
    for arm in (fifo, ecn):
        victim = arm["classes"]["victim"]["latency_s"]
        table.add_row([arm["mode"], victim["p50"] * 1e6, victim["p99"] * 1e6,
                       arm["max_queue_mtus"]])
    save_artifact("table5_gpcnet_dynamic", table.render())
    fifo_p99 = fifo["classes"]["victim"]["latency_s"]["p99"]
    ecn_p99 = ecn["classes"]["victim"]["latency_s"]["p99"]
    # GPCNeT shape: FIFO tail far above the ECN tail, ECN tail bounded
    # by a queue near the marking threshold (k=30 MTUs of ~4 KiB at
    # 25 GB/s is ~5 us of queue; give slack for the AIMD sawtooth).
    assert fifo_p99 >= 2.0 * ecn_p99
    assert ecn_p99 < 25e-6
    assert ecn["max_queue_mtus"] < fifo["max_queue_mtus"]


def test_32ppn_degradation_bands(benchmark):
    def run32():
        cfg = GpcnetConfig(ppn=32)
        iso = run_gpcnet(cfg, congested=False, rng=2)
        con = run_gpcnet(cfg, congested=True, rng=2)
        return con.impact_vs(iso)

    impact = benchmark(run32)
    table = Table(["Test", "avg impact", "p99 impact"],
                  title="GPCNeT 32 PPN congestion impact (paper: avg "
                        "1.2-1.6x, p99 1.8-7.6x)", float_fmt="{:.2f}")
    for name, m in impact.items():
        table.add_row([name, m["avg"], m["p99"]])
    save_artifact("table5_gpcnet_32ppn", table.render())
    avgs = [m["avg"] for m in impact.values()]
    p99s = [m["p99"] for m in impact.values()]
    assert 1.15 <= max(avgs) <= 1.7
    assert 1.8 <= max(p99s) <= 8.0
