"""Ablation — pack vs spread job placement (§3.4.2's policy).

Quantifies both halves of Slurm's topology-aware rule on a materialised
fabric: a packed small job keeps all traffic on untapered intra-group
links; a spread large job reaches more global links for minimal routing.
"""

import numpy as np

from repro.fabric.dragonfly import DragonflyConfig
from repro.fabric.network import SlingshotNetwork
from repro.reporting import Table
from repro.scheduler.placement import (PlacementPolicy, allocation_stats,
                                       place_job)

from _harness import save_artifact

CFG = DragonflyConfig().scaled(8, 4, 4)
NODES_PER_GROUP = CFG.endpoints_per_group // 4   # 4 NICs per node


def _exchange_bandwidth(net: SlingshotNetwork, nodes: list[int]) -> float:
    """Mean per-NIC bandwidth of a half-shift exchange over the job.

    Every endpoint sends to the endpoint half the job away — the pattern a
    transpose or butterfly stage produces, and the one that exposes the
    taper when the job spans groups.
    """
    endpoints = [n * 4 + k for n in nodes for k in range(4)]
    half = len(endpoints) // 2
    pairs = [(endpoints[i], endpoints[(i + half) % len(endpoints)])
             for i in range(len(endpoints))]
    flows, _ = net.flow_bandwidths(pairs)
    return float(np.mean([f.bandwidth for f in flows]))


def _max_global_hops(net: SlingshotNetwork, nodes: list[int]) -> int:
    """Worst-case global hops for any endpoint pair of the job."""
    endpoints = [n * 4 + k for n in nodes for k in range(4)]
    worst = 0
    for i in range(0, len(endpoints), 3):
        for j in range(1, len(endpoints), 5):
            if endpoints[i] == endpoints[j]:
                continue
            path = net.router.path(endpoints[i], endpoints[j],
                                   register=False)
            worst = max(worst, net.router.global_hops(path))
    return worst


def test_small_job_pack_vs_spread(benchmark):
    """'Slurm will pack allocations tightly to minimize global hops.'"""
    free = set(range(CFG.groups * NODES_PER_GROUP))
    net = SlingshotNetwork(CFG)

    def run():
        packed = place_job(NODES_PER_GROUP, free, PlacementPolicy.PACK,
                           NODES_PER_GROUP)
        spread = place_job(NODES_PER_GROUP, free, PlacementPolicy.SPREAD,
                           NODES_PER_GROUP)
        return (_max_global_hops(net, packed), _max_global_hops(net, spread),
                _exchange_bandwidth(net, packed),
                _exchange_bandwidth(net, spread), packed, spread)

    (packed_hops, spread_hops, packed_bw, spread_bw,
     packed, spread) = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["placement", "groups", "max global hops",
                   "exchange GB/s per NIC"],
                  title="Ablation: small-job placement", float_fmt="{:.2f}")
    table.add_row(["pack", allocation_stats(packed, CFG,
                                            NODES_PER_GROUP).groups_spanned,
                   packed_hops, packed_bw / 1e9])
    table.add_row(["spread", allocation_stats(spread, CFG,
                                              NODES_PER_GROUP).groups_spanned,
                   spread_hops, spread_bw / 1e9])
    save_artifact("ablation_placement_small", table.render())
    # Packed small jobs use no tapered global links at all; spread ones do.
    assert packed_hops == 0
    assert spread_hops >= 1
    assert allocation_stats(packed, CFG,
                            NODES_PER_GROUP).intra_group_fraction == 1.0


def test_large_job_spread_gains_global_links(benchmark):
    free = set(range(CFG.groups * NODES_PER_GROUP))
    big = 3 * NODES_PER_GROUP

    def run():
        packed = place_job(big, free, PlacementPolicy.PACK, NODES_PER_GROUP)
        spread = place_job(big, free, PlacementPolicy.SPREAD, NODES_PER_GROUP)
        return (allocation_stats(packed, CFG, NODES_PER_GROUP),
                allocation_stats(spread, CFG, NODES_PER_GROUP))

    packed_stats, spread_stats = benchmark(run)
    save_artifact(
        "ablation_placement_large",
        f"packed: {packed_stats.groups_spanned} groups, "
        f"{packed_stats.global_bandwidth_per_node / 1e9:.1f} GB/s/node "
        f"minimal-global\n"
        f"spread: {spread_stats.groups_spanned} groups, "
        f"{spread_stats.global_bandwidth_per_node / 1e9:.1f} GB/s/node "
        f"minimal-global")
    # Spreading a big job multiplies the global links reachable minimally.
    assert (spread_stats.global_bandwidth_per_node
            > 2 * packed_stats.global_bandwidth_per_node)
