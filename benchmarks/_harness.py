"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one of the paper's tables or figures, times the
underlying simulation with pytest-benchmark, asserts the result *shape*
against the paper, and writes the rendered artifact to
``benchmarks/out/<name>.txt`` so the reproduction can be inspected and
diffed against the published values.
"""

from __future__ import annotations

import os

from repro.reporting import ComparisonRow, Table, comparison_table

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def save_artifact(name: str, text: str) -> str:
    """Write a rendered table/figure to benchmarks/out/ and echo it."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


def check_rows(rows: list[ComparisonRow], rel_tol: float, title: str) -> str:
    """Assert paper-vs-measured rows within tolerance; return rendering."""
    text = comparison_table(rows, title=title).render()
    bad = [r for r in rows if not r.within(rel_tol)]
    assert not bad, (
        f"{title}: rows outside {rel_tol:.0%} of the paper: "
        + ", ".join(f"{r.name} ({r.ratio:.3f}x)" for r in bad)
        + "\n" + text)
    return text
