"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one of the paper's tables or figures, times the
underlying simulation with pytest-benchmark, asserts the result *shape*
against the paper, and writes the rendered artifact to
``benchmarks/out/<name>.txt`` so the reproduction can be inspected and
diffed against the published values.
"""

from __future__ import annotations

import os
import tempfile

from repro.reporting import ComparisonRow, comparison_table

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def save_artifact(name: str, text: str) -> str:
    """Write a rendered table/figure to benchmarks/out/ and echo it.

    ``name`` may carry subdirectories (``sweep/summary`` lands in
    ``benchmarks/out/sweep/summary.txt``); every missing parent is
    created.  The write is atomic (temp file + ``os.replace``, staged in
    the *target* directory so the rename never crosses filesystems) so a
    benchmark crashing mid-write can never leave a truncated artifact
    that a later diff against the paper silently accepts.
    """
    path = os.path.join(OUT_DIR, f"{name}.txt")
    parent = os.path.dirname(path)
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent,
                               prefix=f".{os.path.basename(name)}-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text + "\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    print(f"\n{text}\n[saved to {path}]")
    return path


def check_rows(rows: list[ComparisonRow], rel_tol: float, title: str) -> str:
    """Assert paper-vs-measured rows within tolerance; return rendering."""
    text = comparison_table(rows, title=title).render()
    bad = [r for r in rows if not r.within(rel_tol)]
    assert not bad, (
        f"{title}: rows outside {rel_tol:.0%} of the paper: "
        + ", ".join(f"{r.name} ({r.ratio:.3f}x)" for r in bad)
        + "\n" + text)
    return text
