"""Figure 5 — GCD-to-GCD bandwidth: CU kernels (top) vs SDMA (bottom).

Reproduces both panels over the 1-, 2- and 4-link GCD pairs of the twisted
ladder, including the paper's key observation that SDMA engines cannot
stripe and cap at ~50 GB/s regardless of link count.
"""

import pytest

from repro.node.transfers import (TransferEngine, cu_kernel_bandwidth,
                                  figure5_series, sdma_bandwidth)
from repro.reporting import ComparisonRow, Table

from _harness import check_rows, save_artifact

BIG = 1 << 30
#: Figure 5 plateau values, GB/s: width -> (CU kernel, SDMA).
FIG5_PAPER = {1: (37.5, 50.0), 2: (74.9, 50.0), 4: (145.5, 50.0)}
#: One representative adjacent pair per gang width in the twisted ladder.
PAIRS = {1: (0, 2), 2: (0, 4), 4: (0, 1)}


def test_figure5_plateaus(benchmark):
    def measure():
        out = {}
        for width, pair in PAIRS.items():
            out[width] = (cu_kernel_bandwidth(*pair, BIG).bandwidth / 1e9,
                          sdma_bandwidth(*pair, BIG).bandwidth / 1e9)
        return out

    got = benchmark(measure)
    rows = []
    for width, (cu, sdma) in FIG5_PAPER.items():
        rows.append(ComparisonRow(f"{width}-link CU kernel", cu,
                                  got[width][0], "GB/s"))
        rows.append(ComparisonRow(f"{width}-link SDMA", sdma,
                                  got[width][1], "GB/s"))
    text = check_rows(rows, rel_tol=0.02,
                      title="Figure 5: GCD<->GCD bandwidth (paper vs model)")
    save_artifact("fig5_gcd_gcd_bandwidth", text)
    # CU kernels stripe; SDMA does not
    assert got[4][0] > 3.5 * got[1][0]
    assert got[4][1] == pytest.approx(got[1][1], rel=0.02)


def test_figure5_size_ramps(benchmark):
    def series():
        return (figure5_series(TransferEngine.CU_KERNEL),
                figure5_series(TransferEngine.SDMA))

    cu, sdma = benchmark(series)
    table = Table(["size", "CU 1-link", "CU 2-link", "CU 4-link",
                   "SDMA 4-link"], title="Figure 5 ramps (GB/s)",
                  float_fmt="{:.1f}")
    for i, (size, _) in enumerate(cu[1]):
        table.add_row([size, cu[1][i][1], cu[2][i][1], cu[4][i][1],
                       sdma[4][i][1]])
    save_artifact("fig5_ramps", table.render())
    for width in (1, 2, 4):
        values = [v for _, v in cu[width]]
        assert values == sorted(values)   # monotone in message size
