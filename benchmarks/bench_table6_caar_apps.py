"""Table 6 — CAAR and INCITE application KPP speedups over Summit.

Regenerates every row from the calibrated projections and also executes
each application's real computational kernel at laptop scale (that is the
actual timed payload).
"""

from repro.apps import CAAR_APPS
from repro.reporting import ComparisonRow, Table

from _harness import check_rows, save_artifact

TABLE6_PAPER = {
    "CoMet": 5.2,
    "LSMS": 7.5,
    "PIConGPU": 4.7,
    "Cholla": 20.0,
    "GESTS": 5.9,
    "AthenaPK": 4.6,
}


def test_table6_projections(benchmark):
    apps = CAAR_APPS()

    def project():
        return {a.name: a.kpp_result() for a in apps}

    results = benchmark(project)
    rows = [ComparisonRow(name, paper, results[name].achieved, "x vs Summit")
            for name, paper in TABLE6_PAPER.items()]
    text = check_rows(rows, rel_tol=0.02,
                      title="Table 6: CAAR/INCITE results (paper vs model)")
    table = Table(["Application", "Baseline", "Target", "Achieved", "Met"],
                  title="", float_fmt="{:.2f}")
    for a in apps:
        r = results[a.name]
        table.add_row([r.application, r.baseline, r.target, r.achieved,
                       "yes" if r.met else "NO"])
    save_artifact("table6_caar_apps", text + "\n\n" + table.render())
    assert all(r.met for r in results.values())


def test_caar_kernels_execute(benchmark):
    """Time one pass of every CAAR app's real kernel."""

    def run_all():
        return {a.name: a.run_kernel(scale=0.25)["fom"] for a in CAAR_APPS()}

    foms = benchmark.pedantic(run_all, rounds=2, iterations=1)
    assert all(f > 0 for f in foms.values())


def test_projection_decompositions_documented(benchmark):
    """Every projection factor is auditable (printed to the artifact)."""
    lines = benchmark(lambda: [a.describe() for a in CAAR_APPS()])
    save_artifact("table6_decompositions", "\n".join(lines))
    assert all("=" in line for line in lines)
