"""Ablation — checkpoint interval and target tier under the real MTTI.

Ties §5.4 (MTTI ~ hours) to §4.3 (storage rates): the Daly-optimal
interval with burst-buffer checkpoints keeps useful work above 90%, and
beats both naive fixed intervals and direct-to-PFS checkpointing.
"""

import numpy as np

from repro.reporting import Table
from repro.resilience.checkpoint import CheckpointPlan
from repro.resilience.mtti import MttiModel
from repro.storage.iosim import CheckpointScenario

from _harness import save_artifact


def _plans():
    scenario = CheckpointScenario()
    mtti_s = MttiModel.frontier().system_mtti_hours * 3600.0
    burst = CheckpointPlan(checkpoint_cost_s=scenario.burst_time,
                           mtti_s=mtti_s)
    pfs = CheckpointPlan(checkpoint_cost_s=scenario.direct_pfs_time,
                         mtti_s=mtti_s)
    return burst, pfs


def test_interval_sweep(benchmark):
    burst, _ = _plans()

    def sweep():
        intervals = np.geomspace(60.0, 6 * 3600.0, 16)
        return [(t, burst.efficiency_at(t)) for t in intervals]

    points = benchmark(sweep)
    table = Table(["interval (min)", "efficiency"],
                  title="Ablation: checkpoint interval sweep (burst buffer)",
                  float_fmt="{:.4f}")
    for t, eff in points:
        table.add_row([t / 60.0, eff])
    opt = burst.daly_interval_s
    table.add_row([opt / 60.0, burst.efficiency_at_optimum])
    save_artifact("ablation_checkpoint_sweep", table.render())
    # the optimum beats every swept interval
    assert burst.efficiency_at_optimum >= max(e for _, e in points) - 1e-9


def test_burst_buffer_vs_direct_pfs(benchmark):
    burst, pfs = benchmark(_plans)
    save_artifact(
        "ablation_checkpoint_tier",
        f"burst-buffer checkpoint: cost {burst.checkpoint_cost_s:.1f} s, "
        f"optimal interval {burst.daly_interval_s / 60:.1f} min, "
        f"efficiency {burst.efficiency_at_optimum:.4f}\n"
        f"direct-to-PFS checkpoint: cost {pfs.checkpoint_cost_s:.1f} s, "
        f"optimal interval {pfs.daly_interval_s / 60:.1f} min, "
        f"efficiency {pfs.efficiency_at_optimum:.4f}")
    # node-local staging is why Frontier has node-local drives at all
    assert burst.efficiency_at_optimum > pfs.efficiency_at_optimum
    assert burst.efficiency_at_optimum > 0.90
