"""Table 4 — GPU STREAM bandwidths on one MI250X GCD."""

from repro.node.hbm import GpuStreamModel
from repro.node.stream import StreamKernel, run_stream
from repro.reporting import ComparisonRow

from _harness import check_rows, save_artifact

TABLE4_PAPER = {
    "Copy": 1336574.8,
    "Mul": 1338272.2,
    "Add": 1288240.3,
    "Triad": 1285239.7,
    "Dot": 1374240.6,
}


def test_table4_reproduction(benchmark):
    model = GpuStreamModel()
    table = benchmark(model.table4)
    rows = [ComparisonRow(k, paper, table[k], "MB/s")
            for k, paper in TABLE4_PAPER.items()]
    text = check_rows(rows, rel_tol=0.01,
                      title="Table 4: GPU STREAM (paper vs model)")
    save_artifact("table4_gpu_stream", text)
    # "between 79% and 84% of peak HBM bandwidth"
    for kernel in GpuStreamModel.TABLE4_KERNELS:
        assert 0.78 <= model.efficiency(kernel) <= 0.85


def test_host_dot_kernel(benchmark):
    """The GPU benchmark's extra Dot kernel, executed for semantics."""
    result = benchmark(run_stream, StreamKernel.DOT, 2_000_000, repeats=1)
    assert result.bandwidth > 0
