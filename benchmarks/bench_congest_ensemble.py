"""Ensemble timeflow — one step loop for a whole k-sweep.

``python -m repro congest`` and the congest sweep grid ask the same
question many times over one scenario: same fabric, same incast flows,
same time grid — only the control law (``ecn``/``ecn_k``/``backoff``)
varies.  :meth:`TimeflowEngine.run_ensemble` integrates all S arms as
column vectors through one step loop (one sparse matmul per step), so
the whole sweep costs about one sequential run.

Two claims, both gated:

* **speed** — a 16-mode sweep (FIFO + 15 ECN thresholds) at >= 1,024
  endpoints must run >= 4x faster as one ensemble than as the
  sequential per-arm loop over the same engine;
* **bit-identity** — every ensemble column's result document must be
  byte-identical to the sequential run of that arm on the same engine
  (the ``chunk=1`` oracle idiom of ``bench_batch_route``).  A fast
  ensemble that drifts is worthless: the k-sweep artifacts, the sweep
  grid, and the serve fast path all resume from content-hash caches
  keyed on the sequential semantics.

Correctness edge cases (FIFO columns, warmup windows, empty-completion
columns, shared-axis validation) are pinned by
``tests/fabric/test_ensemble.py``; this file measures the ratio.
"""

import json
import time

from repro.core.scenario import frontier_spec
from repro.fabric.timeflow import (TimeflowConfig, TimeflowEngine,
                                   incast_pattern)
from repro.reporting import Table

from _harness import save_artifact

#: FIFO + 15 ECN marking thresholds = the 16-mode sweep under test.
ECN_KS = (4, 8, 12, 16, 20, 26, 30, 36, 42, 48, 54, 60, 70, 80, 90)
MIN_ENDPOINTS = 1024
MIN_SPEEDUP = 4.0

SPEC = frontier_spec().scaled(16, 8, 8)   # exactly 1,024 endpoints
SEED = 11


def _result_doc(result):
    """A result's full content, canonically serialised — any drifted
    bit anywhere (samples, stats, marks, peak queue) changes it."""
    return json.dumps({
        "classes": {c: {"completed": v.completed, "fct": v.fct,
                        "latency": v.latency,
                        "bytes_injected": v.bytes_injected,
                        "goodput": v.goodput}
                    for c, v in result.classes.items()},
        "fct_samples": {c: v.tolist() for c, v in result.fct_samples.items()},
        "latency_samples": {c: v.tolist()
                            for c, v in result.latency_samples.items()},
        "mean_rates": result.mean_rates.tolist(),
        "max_queue_bytes": result.max_queue_bytes,
        "max_link_utilisation": result.max_link_utilisation,
        "marks": result.marks, "steps": result.steps,
    }, sort_keys=True, default=str)


def _measure():
    net = SPEC.build_network(rng=SEED)
    n_endpoints = net.topology.n_endpoints
    assert n_endpoints >= MIN_ENDPOINTS, n_endpoints
    flows = incast_pattern(net, fanin=8, duty=1.0, elephants=2, rng=SEED)
    configs = [TimeflowConfig(ecn=False, warmup_s=1e-4)] + [
        TimeflowConfig(ecn=True, ecn_k=float(k), warmup_s=1e-4)
        for k in ECN_KS]

    # ONE engine for both arms: path planning is load-adaptive (UGAL
    # draws from the router RNG), so bit-identity is only defined
    # against the same planned paths.
    engine = TimeflowEngine(net, flows, configs[0])
    engine.run(configs[0])                    # warm both code paths
    engine.run_ensemble(configs[:1])

    t0 = time.perf_counter()
    sequential = [engine.run(cfg) for cfg in configs]
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    ensemble = engine.run_ensemble(configs)
    ens_s = time.perf_counter() - t0

    identical = sum(_result_doc(a) == _result_doc(b)
                    for a, b in zip(sequential, ensemble))
    return {
        "endpoints": n_endpoints,
        "modes": len(configs),
        "flows": len(flows),
        "steps": sequential[0].steps,
        "sequential_s": seq_s,
        "ensemble_s": ens_s,
        "speedup_x": seq_s / ens_s,
        "identical_modes": identical,
    }


def test_congest_ensemble(benchmark):
    r = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(["metric", "value"],
                  title="16-mode k-sweep: ensemble vs sequential arms",
                  float_fmt="{:.3f}")
    table.add_row(["endpoints", r["endpoints"]])
    table.add_row(["modes (FIFO + ECN ks)", r["modes"]])
    table.add_row(["flows", r["flows"]])
    table.add_row(["steps per arm", r["steps"]])
    table.add_row(["sequential s", r["sequential_s"]])
    table.add_row(["ensemble s", r["ensemble_s"]])
    table.add_row(["speedup", r["speedup_x"]])
    table.add_row(["bit-identical modes", r["identical_modes"]])
    save_artifact("congest_ensemble", table.render())

    assert r["identical_modes"] == r["modes"], \
        "ensemble columns drifted from the sequential oracle"
    assert r["speedup_x"] >= MIN_SPEEDUP, \
        f"ensemble only {r['speedup_x']:.1f}x vs sequential (need >= 4x)"
