"""Weak-scaling efficiency curves — the §4.4 parallel-efficiency claims.

Regenerates the efficiency statements embedded in the application results:
PIConGPU 90% at 9,216 nodes, Shift 97.8% at 8,192, AthenaPK 96% on
Frontier vs 48% on Summit (the NIC-per-GPU story), and the GESTS 1-D vs
2-D decomposition trade.
"""

from repro.apps.scaling import PAPER_EFFICIENCIES, WeakScalingModel
from repro.core.baselines import SUMMIT
from repro.reporting import ComparisonRow, Table

from _harness import check_rows, save_artifact


def test_paper_efficiency_claims(benchmark):
    def measure():
        return {
            "PIConGPU": WeakScalingModel.picongpu().efficiency(9216),
            "Shift": WeakScalingModel.shift().efficiency(8192),
            "AthenaPK-Frontier": WeakScalingModel.athenapk().efficiency(9200),
            "AthenaPK-Summit": WeakScalingModel.athenapk(
                machine=SUMMIT).efficiency(4600),
        }

    got = benchmark(measure)
    rows = [ComparisonRow(name, PAPER_EFFICIENCIES[name][1], got[name],
                          "parallel efficiency")
            for name in got]
    text = check_rows(rows, rel_tol=0.05,
                      title="Weak-scaling efficiencies (paper vs model)")
    save_artifact("weak_scaling_claims", text)
    # the NIC-per-GPU gap: same code, same halo volume, 2x the efficiency
    assert got["AthenaPK-Frontier"] > 1.9 * got["AthenaPK-Summit"]


def test_efficiency_curves(benchmark):
    models = {
        "PIConGPU": WeakScalingModel.picongpu(),
        "Shift": WeakScalingModel.shift(),
        "AthenaPK (Frontier)": WeakScalingModel.athenapk(),
        "AthenaPK (Summit)": WeakScalingModel.athenapk(machine=SUMMIT),
        "GESTS 1-D": WeakScalingModel.gests("1d"),
        "GESTS 2-D": WeakScalingModel.gests("2d"),
    }
    counts = [1, 64, 512, 4096, 9216]

    def curves():
        return {name: m.curve(counts) for name, m in models.items()}

    results = benchmark(curves)
    table = Table(["nodes"] + list(models), title="Weak-scaling curves",
                  float_fmt="{:.3f}")
    for i, n in enumerate(counts):
        table.add_row([n] + [results[name][i][1] for name in models])
    save_artifact("weak_scaling_curves", table.render())
    # every curve is monotone non-increasing
    for series in results.values():
        effs = [e for _, e in series]
        assert effs == sorted(effs, reverse=True)
    # the 2-D decomposition never beats the 1-D one
    for i in range(len(counts)):
        assert (results["GESTS 2-D"][i][1]
                <= results["GESTS 1-D"][i][1] + 1e-12)
