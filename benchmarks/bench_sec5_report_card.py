"""Section 5 — Frontier vs the 2008 exascale report (all four challenges).

Regenerates the power (§5.1), memory/storage (§5.2), concurrency (§5.3)
and resiliency (§5.4) verdicts from the live models.
"""

import pytest

from repro.core.report_card import ChallengeGrade, ExascaleReportCard
from repro.power.model import FrontierPowerModel
from repro.reporting import ComparisonRow, Table
from repro.resilience.mtti import MttiModel, monte_carlo_mtti

from _harness import check_rows, save_artifact


def test_section5_scorecard(benchmark):
    card = ExascaleReportCard()
    results = benchmark(card.evaluate)
    table = Table(["Challenge", "Grade"], title="Section 5: the four "
                  "challenges of the 2008 exascale report")
    for name, result in results.items():
        table.add_row([result.challenge, result.grade.value])
    save_artifact("sec5_report_card", table.render())
    assert results["energy_and_power"].grade is ChallengeGrade.PASS
    assert results["memory_and_storage"].grade is ChallengeGrade.PARTIAL
    assert results["concurrency_and_locality"].grade is ChallengeGrade.PASS
    assert results["resiliency"].grade is ChallengeGrade.STRUGGLE
    assert card.meets_spirit_of_exascale()


def test_sec51_power(benchmark):
    model = FrontierPowerModel()
    power = benchmark(lambda: (model.hpl_power, model.gflops_per_watt,
                               model.mw_per_exaflop))
    rows = [
        ComparisonRow("HPL power", 21.1, power[0] / 1e6, "MW"),
        ComparisonRow("efficiency", 52.0, power[1], "GF/W"),
    ]
    text = check_rows(rows, rel_tol=0.02, title="Section 5.1: energy & power")
    save_artifact("sec51_power", text)
    assert power[2] < 20.0   # under the 20 MW/EF line


def test_sec54_resiliency(benchmark):
    model = MttiModel.frontier()

    def run():
        analytic = model.system_mtti_hours
        mc, _ = monte_carlo_mtti(model.inventory, trials=200, rng=1)
        return analytic, mc

    analytic, mc = benchmark.pedantic(run, rounds=2, iterations=1)
    # "not much better than their projected four-hour target"
    assert 2.0 <= analytic <= 8.0
    assert mc == pytest.approx(analytic, rel=0.1)
    leading = model.inventory.leading_contributors(2)
    save_artifact("sec54_resiliency",
                  f"analytic MTTI: {analytic:.2f} h\n"
                  f"monte-carlo MTTI: {mc:.2f} h\n"
                  f"leading contributors: {', '.join(leading)}")
    assert any("HBM" in name for name in leading)
    assert any("Power" in name for name in leading)


def test_energy_to_solution(benchmark):
    """Energy per unit of science across the application suite: every KPP
    speedup dwarfs the Frontier/baseline power growth, so the whole suite
    is a net energy win — the application-level face of §5.1."""
    from repro.power.energy import suite_energy_table

    comparisons = benchmark(suite_energy_table)
    table = Table(["Application", "Speedup", "Power ratio", "Energy gain"],
                  title="Energy per unit of science, Frontier vs baseline",
                  float_fmt="{:.1f}")
    for c in comparisons:
        table.add_row([c.application, c.speedup, c.power_ratio,
                       c.energy_gain])
    save_artifact("sec51_energy_to_solution", table.render())
    assert all(c.is_energy_win for c in comparisons)
    assert min(c.energy_gain for c in comparisons) > 2.0


def test_cost_arithmetic(benchmark):
    """§2 footnote 1 and §5's cost argument, regenerated."""
    from repro.economics import SystemCostModel

    model = SystemCostModel()
    rationale = benchmark(model.twenty_mw_rationale)
    assert rationale["implied_power_cap_mw"] == pytest.approx(20.0)
    assert rationale["frontier_meets_rule"]
    args = model.why_not_1000x()
    save_artifact("sec5_cost_arithmetic", "\n".join(
        f"{k}: {v}" for k, v in {**rationale, **args}.items()))
    assert args["budget_growth_vs_2008"] <= 6.0
