"""Table 2 — I/O subsystem capacities and theoretical bandwidths.

Regenerates all four tiers (node-local + three Orion tiers) from the
storage models and compares against the published table.
"""

from repro.core.machine import FrontierMachine
from repro.reporting import ComparisonRow
from repro.storage.lustre import OrionFilesystem
from repro.storage.nvme import node_local_storage

from _harness import check_rows, save_artifact

#: Table 2: tier -> (capacity PB, read TB/s, write TB/s).
TABLE2_PAPER = {
    "Node-Local": (32.9, 75.3, 37.6),
    "Orion Metadata": (10.0, 0.8, 0.4),
    "Orion Performance": (11.5, 10.0, 10.0),
    "Orion Capacity": (679.0, 5.5, 4.6),
}


def build_table2() -> dict[str, tuple[float, float, float]]:
    nodes = 9472
    local = node_local_storage()
    out = {
        # theoretical node-local: contracted peak x node count (the paper's
        # 75.3/37.6 row uses the ~7.9/4.0 GB/s device-level rates).
        "Node-Local": (nodes * local.capacity_bytes / 1e15,
                       nodes * local.seq_read / 1e12,
                       nodes * local.seq_write / 1e12),
    }
    fs = OrionFilesystem()
    for name, row in fs.table2().items():
        out[name] = (row["capacity_PB"], row["read_TBps"], row["write_TBps"])
    return out


def test_table2_reproduction(benchmark):
    table = benchmark(build_table2)
    rows = []
    for tier, (cap, read, write) in TABLE2_PAPER.items():
        got = table[tier]
        rows.append(ComparisonRow(f"{tier} capacity", cap, got[0], "PB"))
        rows.append(ComparisonRow(f"{tier} read", read, got[1], "TB/s"))
        rows.append(ComparisonRow(f"{tier} write", write, got[2], "TB/s"))
    text = check_rows(rows, rel_tol=0.06,
                      title="Table 2: I/O Subsystem (paper vs computed)")
    save_artifact("table2_io_subsystem", text)
    # shape claims: flash is the fast tier, disk the big one
    assert table["Orion Capacity"][0] > 50 * table["Orion Performance"][0]
    assert table["Orion Performance"][1] > table["Orion Capacity"][1]


def test_machine_level_aggregates(benchmark):
    machine = FrontierMachine()
    read = benchmark(lambda: machine.node_local_read_bandwidth)
    assert read / 1e12 > 60.0   # §4.3.1's 67.3 TB/s measured aggregate
