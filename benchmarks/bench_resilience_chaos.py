"""Chaos engine — measured dynamics vs the §5.4 analytic models.

The discrete-event fault injector (:mod:`repro.chaos`) replays the FIT
inventory as node/link/storage events against the live scheduler and
checkpoint/restart policy.  Its correctness claim is convergence to the
static models: per-job interrupt rates within ±10% of ``MttiModel`` and
Daly-optimum efficiency within ±5% of ``checkpoint_efficiency``.  This
bench times the validation run, asserts both gates row-by-row, and
writes the measured-vs-analytic table as an artifact.
"""

from repro.chaos import (EFFICIENCY_TOLERANCE, MIN_EVENTS, RATE_TOLERANCE,
                         ChaosConfig, cross_validate, run_chaos,
                         validation_spec)
from repro.reporting import ComparisonRow

from _harness import check_rows, save_artifact


def test_mtti_cross_validation(benchmark):
    """Interrupt rates vs MttiModel under uniform radius-1 blasts."""
    report = benchmark(cross_validate, seed=0)
    assert report.n_events >= MIN_EVENTS
    rows = [ComparisonRow(f"{j.name} interrupt rate",
                          paper=j.analytic_rate_per_h,
                          measured=j.measured_rate_per_h,
                          units="1/h")
            for j in report.jobs]
    text = check_rows(rows, RATE_TOLERANCE,
                      "Chaos engine: measured vs MttiModel interrupt rates")
    save_artifact("resilience_chaos_mtti", text)
    assert report.passed


def test_daly_efficiency_cross_validation(benchmark):
    """Measured efficiency at the Daly optimum vs checkpoint_efficiency."""
    report = benchmark(cross_validate, seed=0)
    rows = [ComparisonRow(f"{j.name} efficiency",
                          paper=j.analytic_efficiency,
                          measured=j.measured_efficiency)
            for j in report.jobs]
    text = check_rows(
        rows, EFFICIENCY_TOLERANCE,
        "Chaos engine: measured vs analytic efficiency at the Daly optimum")
    save_artifact("resilience_chaos_efficiency", text)
    assert 0.0 < report.machine_availability <= 1.0


def test_frontier_radii_determinism(benchmark):
    """Frontier blast radii + fabric coupling: replayable run, sane output.

    Same spec + seed must reproduce the identical committed-work ledger
    (the resumable-artifact contract), and the degraded machine must
    still stay mostly available at this event rate.
    """
    spec = validation_spec(failure_scale=150.0)
    config = ChaosConfig(horizon_h=200.0, seed=0, mttr_scale=0.2)

    first = benchmark(run_chaos, spec, config)
    second = run_chaos(spec, config)

    assert len(first.timeline) > 0
    assert first.to_doc() == second.to_doc()
    assert 0.5 < first.machine_availability <= 1.0
    for job in first.jobs:
        assert 0.0 < job.measured_efficiency <= 1.0
    summary = "\n".join(
        [f"events: {len(first.timeline)}",
         f"machine availability: {first.machine_availability:.6f}"]
        + [f"{j.name}: interrupts={j.interrupts} "
           f"efficiency={j.measured_efficiency:.4f}"
           for j in first.jobs])
    save_artifact("resilience_chaos_frontier", summary)
