"""Ablation — minimal vs Valiant vs UGAL routing on the dragonfly.

§3.2: "Direct networks ... use non-minimal routing to take advantage of
additional paths through the fabric to achieve higher bandwidth".  This
bench runs the same adversarial pattern (every endpoint of group g sends
to group g+1 — the worst case for minimal routing) and a uniform pattern
under each policy.
"""

import numpy as np

from repro.fabric.dragonfly import DragonflyConfig
from repro.fabric.network import SlingshotNetwork
from repro.fabric.routing import RoutingPolicy
from repro.reporting import Table

from _harness import save_artifact

CFG = DragonflyConfig().scaled(8, 4, 4)


def _adversarial_rates(policy: RoutingPolicy) -> np.ndarray:
    net = SlingshotNetwork(CFG, policy=policy, rng=5)
    g = CFG.endpoints_per_group
    flows = net.shift_pattern(g)     # whole-group shift: all global
    return np.array([f.bandwidth for f in flows])


def _uniform_rates(policy: RoutingPolicy, rng_seed: int = 7) -> np.ndarray:
    net = SlingshotNetwork(CFG, policy=policy, rng=rng_seed)
    gen = np.random.default_rng(rng_seed)
    n = CFG.total_endpoints
    perm = gen.permutation(n)
    pairs = [(i, int(perm[i])) for i in range(n) if perm[i] != i]
    flows, _ = net.flow_bandwidths(pairs)
    return np.array([f.bandwidth for f in flows])


def test_adversarial_pattern(benchmark):
    def run():
        return {p.value: _adversarial_rates(p) for p in RoutingPolicy}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["policy", "mean GB/s", "min GB/s"],
                  title="Ablation: adversarial group-shift traffic",
                  float_fmt="{:.2f}")
    for name, r in rates.items():
        table.add_row([name, r.mean() / 1e9, r.min() / 1e9])
    save_artifact("ablation_routing_adversarial", table.render())
    # Non-minimal routing must beat minimal on the adversarial pattern:
    # minimal jams everything through one bundle per group pair.
    assert rates["valiant"].mean() > 1.5 * rates["minimal"].mean()
    assert rates["ugal"].mean() > 1.5 * rates["minimal"].mean()


def test_uniform_pattern(benchmark):
    def run():
        return {p.value: _uniform_rates(p) for p in RoutingPolicy}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["policy", "mean GB/s"],
                  title="Ablation: uniform random traffic",
                  float_fmt="{:.2f}")
    for name, r in rates.items():
        table.add_row([name, r.mean() / 1e9])
    save_artifact("ablation_routing_uniform", table.render())
    # On friendly traffic minimal is at least as good as Valiant (which
    # burns two global hops per flow); UGAL should track minimal.
    assert rates["minimal"].mean() >= 0.95 * rates["valiant"].mean()
    assert rates["ugal"].mean() >= 0.9 * rates["minimal"].mean()
