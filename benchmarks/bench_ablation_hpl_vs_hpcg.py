"""Ablation — HPL vs HPCG through the roofline (conclusion's metric debate).

The paper's conclusion defers to Kogge & Dally's companion analysis, which
argues HPCG is the honest exascale metric.  This bench regenerates both
June-2022 list entries from the roofline model and runs the real
preconditioned-CG kernel to demonstrate the memory-bound regime.
"""

import pytest

from repro.apps.kernels.cg import (hpcg_arithmetic_intensity, measure_fom,
                                   poisson_operator)
from repro.node.roofline import (GcdRoofline, hpcg_to_hpl_ratio,
                                 project_hpcg, project_hpl)
from repro.reporting import ComparisonRow, Table

from _harness import check_rows, save_artifact


def test_list_entries_from_the_roofline(benchmark):
    def project():
        return project_hpl(), project_hpcg(), hpcg_to_hpl_ratio()

    hpl, hpcg, ratio = benchmark(project)
    rows = [
        ComparisonRow("HPL Rmax", 1.102, hpl / 1e18, "EF"),
        ComparisonRow("HPCG", 14.05, hpcg / 1e15, "PF"),
    ]
    text = check_rows(rows, rel_tol=0.01,
                      title="June 2022 list entries (roofline projection)")
    save_artifact("ablation_hpl_vs_hpcg", text + f"\n\nHPCG/HPL ratio: "
                  f"{ratio:.4f} (the two-orders-of-magnitude gap)")
    assert 0.01 < ratio < 0.02


def test_roofline_series(benchmark):
    roof = GcdRoofline()
    series = benchmark(roof.series)
    table = Table(["AI (FLOP/byte)", "attainable TF/s"],
                  title="MI250X GCD roofline (FP64 matrix pipeline)",
                  float_fmt="{:.3f}")
    for ai, flops in series:
        table.add_row([ai, flops / 1e12])
    save_artifact("ablation_roofline_series", table.render())
    assert roof.ridge_point == pytest.approx(29.29, abs=0.05)


def test_real_pcg_kernel(benchmark):
    """Time the actual SymGS-preconditioned CG on the 3-D Poisson problem."""
    result = benchmark.pedantic(measure_fom, kwargs={"n": 12}, rounds=2,
                                iterations=1)
    assert result["solution_error"] < 1e-6
    # the kernel's measured AI confirms the memory-bound placement
    a = poisson_operator(12)
    ai = hpcg_arithmetic_intensity(a)
    assert GcdRoofline().is_memory_bound(ai)
