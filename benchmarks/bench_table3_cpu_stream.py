"""Table 3 — CPU STREAM with temporal vs non-temporal stores.

Regenerates the reported MB/s for Copy/Scale/Add/Triad in both store modes
from the DDR model, runs the *real* NumPy STREAM kernels for semantics and
host timing, and includes the NPS-1 vs NPS-4 ablation from §4.1.1.
"""

import pytest

from repro.node.cpu import NpsMode
from repro.node.dram import CpuStreamModel
from repro.node.stream import StreamKernel, run_stream
from repro.reporting import ComparisonRow

from _harness import check_rows, save_artifact

TABLE3_PAPER = {
    "Copy": (176780.4, 179130.5),
    "Scale": (107262.2, 172396.2),
    "Add": (125567.1, 178356.8),
    "Triad": (120702.1, 178277.0),
}


def test_table3_reproduction(benchmark):
    model = CpuStreamModel()
    table = benchmark(model.table3)
    rows = []
    for kernel, (temporal, nt) in TABLE3_PAPER.items():
        rows.append(ComparisonRow(f"{kernel} temporal", temporal,
                                  table[kernel]["temporal_MBps"], "MB/s"))
        rows.append(ComparisonRow(f"{kernel} non-temporal", nt,
                                  table[kernel]["non_temporal_MBps"], "MB/s"))
    text = check_rows(rows, rel_tol=0.02,
                      title="Table 3: CPU STREAM (paper vs model)")
    save_artifact("table3_cpu_stream", text)
    # the paper's qualitative claim: caching hurts when data exceed cache
    assert (table["Scale"]["temporal_MBps"]
            < 0.65 * table["Scale"]["non_temporal_MBps"])


def test_nps_mode_ablation(benchmark):
    """§4.1.1: ~180 GB/s in NPS-4 vs ~125 GB/s in NPS-1."""
    model = CpuStreamModel()

    def sweep():
        return {mode.name: model.sustained_nt_bandwidth(mode) / 1e9
                for mode in NpsMode}

    rates = benchmark(sweep)
    assert rates["NPS4"] == pytest.approx(179.2, rel=0.01)
    assert rates["NPS1"] == pytest.approx(125.0, rel=0.02)
    save_artifact("table3_nps_ablation",
                  "\n".join(f"{k}: {v:.1f} GB/s" for k, v in rates.items()))


def test_host_stream_triad_kernel(benchmark):
    """Time the real NumPy triad on this host (semantics, not Frontier)."""
    result = benchmark(run_stream, StreamKernel.TRIAD, 2_000_000, repeats=1)
    assert result.bandwidth > 0
