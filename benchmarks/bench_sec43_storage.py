"""§4.3 — storage evaluation: node-local fio and Orion streaming rates."""

from repro.reporting import ComparisonRow
from repro.storage.fio import FioJob, aggregate_over_nodes, run_fio
from repro.storage.iosim import CheckpointScenario, ingest_time
from repro.storage.lustre import OrionFilesystem
from repro.storage.pfl import Tier
from repro.units import TiB

from _harness import check_rows, save_artifact


def test_node_local_fio(benchmark):
    """§4.3.1's measured node-local rates and full-system aggregates."""

    def run_jobs():
        return (run_fio(FioJob.sequential_read()),
                run_fio(FioJob.sequential_write()),
                run_fio(FioJob.random_read_4k()))

    read, write, rand = benchmark(run_jobs)
    rows = [
        ComparisonRow("node seq read", 7.1, read.bandwidth / 1e9, "GB/s"),
        ComparisonRow("node seq write", 4.2, write.bandwidth / 1e9, "GB/s"),
        ComparisonRow("node 4k rand read", 1.58, rand.iops / 1e6, "M IOPS"),
        ComparisonRow("system read", 67.3,
                      aggregate_over_nodes(read, 9472).bandwidth / 1e12,
                      "TB/s"),
        ComparisonRow("system write", 39.8,
                      aggregate_over_nodes(write, 9472).bandwidth / 1e12,
                      "TB/s"),
        ComparisonRow("system IOPS", 15.0,
                      aggregate_over_nodes(rand, 9472).iops / 1e9, "B IOPS"),
    ]
    text = check_rows(rows, rel_tol=0.03,
                      title="Section 4.3.1: node-local storage (fio)")
    save_artifact("sec431_node_local", text)


def test_orion_streaming(benchmark):
    """§4.3.2's measured PFS rates and the 700 TiB ingest calculation."""
    fs = OrionFilesystem()

    def measure():
        flash = fs.tier_stats(Tier.PERFORMANCE, measured=True)
        disk = fs.tier_stats(Tier.CAPACITY, measured=True)
        return flash, disk, ingest_time(700 * TiB, fs)

    flash, disk, ingest = benchmark(measure)
    rows = [
        ComparisonRow("flash read", 11.7, flash.read / 1e12, "TB/s"),
        ComparisonRow("flash write", 9.4, flash.write / 1e12, "TB/s"),
        ComparisonRow("capacity read", 4.9, disk.read / 1e12, "TB/s"),
        ComparisonRow("capacity write", 4.3, disk.write / 1e12, "TB/s"),
        ComparisonRow("700 TiB ingest", 180.0, ingest, "s"),
    ]
    text = check_rows(rows, rel_tol=0.03,
                      title="Section 4.3.2: Orion streaming (measured)")
    save_artifact("sec432_orion", text)


def test_pfl_tiering_ablation(benchmark):
    """Tiering on vs off.  The PFL's wins: (a) files <= 8 MB never touch a
    hard drive, (b) files <= 256 KB are answered at open from the MDS
    (DoM), (c) small-file streaming beats the capacity-only layout."""
    fs = OrionFilesystem()

    def effective(size):
        return fs.effective_write_bandwidth(size)

    small = benchmark(effective, 6 * 10 ** 6)
    large = fs.effective_write_bandwidth(10 ** 12)
    # (a) the flash tier absorbs the whole small file
    per_tier = fs.layout.bytes_per_tier(6 * 10 ** 6)
    assert per_tier[Tier.CAPACITY] == 0
    # (b) DoM answers tiny opens without contacting an object server
    assert fs.small_file_open_served(200 * 1024)
    assert not fs.small_file_open_served(9 * 10 ** 6)
    # (c) small files stream faster than the capacity tier alone
    assert small > 1.05 * large
    save_artifact("sec43_pfl_ablation",
                  f"6 MB file effective write: {small / 1e12:.2f} TB/s "
                  f"(0 bytes on HDD)\n"
                  f"1 TB file effective write: {large / 1e12:.2f} TB/s\n"
                  f"200 KB open served by DoM: True")


def test_checkpoint_scenario(benchmark):
    scenario = benchmark(CheckpointScenario)
    summary = scenario.summary()
    assert summary["blocking_fraction"] < 0.01
    assert scenario.drain_fits_interval
    save_artifact("sec43_checkpoint",
                  "\n".join(f"{k}: {v:.3f}" for k, v in summary.items()))


def test_ior_campaign(benchmark):
    """IOR-style sweep: access pattern x alignment x transfer size, the
    methodology behind the §4.3.2 streaming numbers."""
    from repro.microbench.ior import IorAccess, IorJob, run_ior
    from repro.reporting import Table

    def sweep():
        out = {}
        for access in IorAccess:
            for aligned in (True, False):
                for transfer in (256 * 1024, 16 * 1024 * 1024):
                    job = IorJob(access=access, aligned=aligned,
                                 transfer_bytes=transfer)
                    out[(access.value, aligned, transfer)] = run_ior(job)
        return out

    results = benchmark(sweep)
    table = Table(["access", "aligned", "transfer", "TB/s", "bound by"],
                  title="IOR campaign on the Orion flash tier",
                  float_fmt="{:.2f}")
    for (access, aligned, transfer), r in results.items():
        table.add_row([access, str(aligned), transfer, r.bandwidth_tbs,
                       r.bound_by])
    save_artifact("sec43_ior_campaign", table.render())
    best = results[("fpp", True, 16 * 1024 * 1024)]
    worst = results[("ssf", False, 256 * 1024)]
    assert best.bandwidth_tbs > 9.0       # the measured 9.4 TB/s regime
    assert worst.bandwidth < 0.4 * best.bandwidth
