#!/usr/bin/env python
"""Benchmark perf-regression gate.

Runs the deterministic probe suite (:mod:`repro.obs.probes`) and compares
wall time, model values, and observability counters against the committed
``benchmarks/BENCH_BASELINE.json``.  CI runs this after the benchmark
smoke job; it exits non-zero on regression.

Usage::

    python benchmarks/_regression.py            # check against baseline
    python benchmarks/_regression.py --update   # re-record the baseline

Tolerances come from :mod:`repro.obs.regression` (env overrides:
``REPRO_BENCH_WALL_FACTOR``, ``REPRO_BENCH_RTOL``).
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_BASELINE.json")


def main(argv: list[str] | None = None) -> int:
    from repro.obs import regression
    return regression.main(argv, default_baseline=BASELINE)


if __name__ == "__main__":
    sys.exit(main())
