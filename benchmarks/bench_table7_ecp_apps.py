"""Table 7 — ECP application KPP speedups over the ~20 PF generation."""

from repro.apps import ECP_APPS
from repro.reporting import ComparisonRow, Table

from _harness import check_rows, save_artifact

TABLE7_PAPER = {
    "WarpX (vs Warp)": ("Cori", 500.0),
    "ExaSky": ("Theta", 234.0),
    "EXAALT": ("Mira", 398.5),
    "ExaSMR": ("Titan", 70.0),
    "WDMApp": ("Titan", 150.0),
}


def test_table7_projections(benchmark):
    apps = ECP_APPS()

    def project():
        return {a.name: a.kpp_result() for a in apps}

    results = benchmark(project)
    rows = [ComparisonRow(name, paper, results[name].achieved,
                          f"x vs {baseline}")
            for name, (baseline, paper) in TABLE7_PAPER.items()]
    text = check_rows(rows, rel_tol=0.02,
                      title="Table 7: ECP results (paper vs model)")
    table = Table(["Application", "Baseline", "Target", "Achieved", "Met"],
                  title="", float_fmt="{:.1f}")
    for a in apps:
        r = results[a.name]
        table.add_row([r.application, r.baseline, r.target, r.achieved,
                       "yes" if r.met else "NO"])
    save_artifact("table7_ecp_apps", text + "\n\n" + table.render())
    # every app beat 50x, some dramatically
    assert all(r.met for r in results.values())
    assert results["WarpX (vs Warp)"].achieved == max(
        r.achieved for r in results.values())


def test_ecp_kernels_execute(benchmark):
    """Time one pass of every ECP app's real kernel (PIC, PM gravity,
    ParSplice+MD, MC+CFD Picard coupling, core-edge coupling)."""

    def run_all():
        return {a.name: a.run_kernel(scale=0.2)["fom"] for a in ECP_APPS()}

    foms = benchmark.pedantic(run_all, rounds=2, iterations=1)
    assert all(f > 0 for f in foms.values())


def test_projection_decompositions_documented(benchmark):
    lines = benchmark(lambda: [a.describe() for a in ECP_APPS()])
    save_artifact("table7_decompositions", "\n".join(lines))
    assert all("=" in line for line in lines)
