"""Deterministic RNG utility tests."""

import json
import os
import subprocess
import sys

import numpy as np

import repro
from repro.rng import as_generator, spawn


class TestAsGenerator:
    def test_none_is_deterministic(self):
        a = as_generator(None).random(4)
        b = as_generator(None).random(4)
        assert np.array_equal(a, b)

    def test_int_seed(self):
        a = as_generator(7).random(4)
        b = as_generator(7).random(4)
        c = as_generator(8).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_generator_passthrough(self):
        g = np.random.default_rng(3)
        assert as_generator(g) is g


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(123, 3)
        draws = [c.random(8) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_is_reproducible(self):
        a = [c.random(4) for c in spawn(5, 2)]
        b = [c.random(4) for c in spawn(5, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_count(self):
        assert len(spawn(None, 5)) == 5


class TestSpawnAcrossProcesses:
    """Sweep correctness rests on this: a worker process spawning from the
    same parent seed must draw the identical stream the parent would."""

    @staticmethod
    def _draws_in_subprocess(code: str) -> object:
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        return json.loads(out.stdout)

    def test_child_draws_identical_in_subprocess(self):
        code = ("import json\n"
                "from repro.rng import spawn\n"
                "print(json.dumps([g.random(6).tolist()"
                " for g in spawn(123, 3)]))\n")
        child = self._draws_in_subprocess(code)
        parent = [g.random(6).tolist() for g in spawn(123, 3)]
        assert parent == child

    def test_sweep_task_stream_crosses_process_boundary(self):
        # The exact derivation the sweep worker uses: one child spawned
        # from a task's integer seed.
        seed = 0x5EED123
        code = (f"import json\n"
                f"from repro.rng import spawn\n"
                f"print(json.dumps(spawn({seed}, 1)[0].random(8).tolist()))\n")
        assert spawn(seed, 1)[0].random(8).tolist() == \
            self._draws_in_subprocess(code)
