"""Deterministic RNG utility tests."""

import numpy as np

from repro.rng import as_generator, spawn


class TestAsGenerator:
    def test_none_is_deterministic(self):
        a = as_generator(None).random(4)
        b = as_generator(None).random(4)
        assert np.array_equal(a, b)

    def test_int_seed(self):
        a = as_generator(7).random(4)
        b = as_generator(7).random(4)
        c = as_generator(8).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_generator_passthrough(self):
        g = np.random.default_rng(3)
        assert as_generator(g) is g


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(123, 3)
        draws = [c.random(8) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_is_reproducible(self):
        a = [c.random(4) for c in spawn(5, 2)]
        b = [c.random(4) for c in spawn(5, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_count(self):
        assert len(spawn(None, 5)) == 5
