"""Self-healing chaos: spare pools, adaptive checkpointing, the heal gate."""

import json
from dataclasses import replace

import pytest

from repro.chaos import (ChaosConfig, chaos_run_id, cross_validate_heal,
                         heal_validation_spec, run_chaos, validation_config,
                         validation_spec)
from repro.chaos.heal import SparePool
from repro.core.scenario import (MachineSpec, ResiliencePolicySpec,
                                 frontier_spec)
from repro.errors import ConfigurationError, SchedulerError
from repro.resilience import (AdaptiveCheckpointController,
                              InterruptRateEstimator)
from repro.resilience.checkpoint import daly_optimal_interval
from repro.scheduler.slurm import SlurmScheduler
from repro.sweep.plan import task_hash

#: One three-arm gate run per module (~2,100 interrupts over 1,000 h),
#: shared by every acceptance assertion below.
_REPORT = None


@pytest.fixture(scope="module")
def report():
    global _REPORT
    if _REPORT is None:
        _REPORT = cross_validate_heal(seed=0)
    return _REPORT


class TestInterruptRateEstimator:
    def test_zero_evidence_returns_the_prior(self):
        est = InterruptRateEstimator(prior_rate_per_h=0.25)
        assert est.observe(0.0, 0) == pytest.approx(0.25)

    def test_evidence_dominates_the_prior(self):
        # 1/h modeled, but 4/h measured over 1,000 h: posterior ~ measured
        est = InterruptRateEstimator(prior_rate_per_h=1.0,
                                     prior_weight_h=24.0)
        assert est.observe(1000.0, 4000) == pytest.approx(4.0, rel=0.03)

    def test_prior_weight_sets_the_blend(self):
        est = InterruptRateEstimator(prior_rate_per_h=1.0,
                                     prior_weight_h=10.0)
        # equal pseudo- and real evidence: the midpoint rate
        assert est.observe(10.0, 30) == pytest.approx(2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            InterruptRateEstimator(prior_rate_per_h=-1.0)
        with pytest.raises(ConfigurationError):
            InterruptRateEstimator(prior_rate_per_h=1.0, prior_weight_h=0.0)
        with pytest.raises(ConfigurationError):
            InterruptRateEstimator(prior_rate_per_h=1.0).observe(-1.0, 0)


class TestAdaptiveCheckpointController:
    def controller(self, **kw) -> AdaptiveCheckpointController:
        kw.setdefault("delta_s", 60.0)
        kw.setdefault("prior_mtti_s", 8 * 3600.0)
        return AdaptiveCheckpointController(**kw)

    def test_starts_at_the_modeled_daly_optimum(self):
        ctl = self.controller()
        assert ctl.interval_s == pytest.approx(
            daly_optimal_interval(60.0, 8 * 3600.0))
        assert ctl.interval_s == pytest.approx(ctl.prior_interval_s)

    def test_converges_to_the_measured_optimum(self):
        # modeled MTTI 8 h, measured 2 h (4x mismatch): the steady-state
        # interval must land on the Daly optimum at the *measured* MTTI.
        ctl = self.controller()
        for hours in range(100, 2100, 100):
            ctl.update(float(hours), hours // 2)
        assert ctl.interval_s == pytest.approx(
            daly_optimal_interval(60.0, 2 * 3600.0), rel=0.10)
        assert ctl.moves >= 1

    def test_matching_evidence_does_not_move_the_interval(self):
        ctl = self.controller(prior_mtti_s=4 * 3600.0)
        start = ctl.interval_s
        for hours in range(100, 1100, 100):
            ctl.update(float(hours), hours // 4)
        assert ctl.interval_s == start
        assert ctl.moves == 0

    def test_deadband_suppresses_small_moves(self):
        ctl = self.controller(deadband=0.5)
        # 2x rate mismatch moves the optimum by ~sqrt(2) < the deadband
        for hours in range(100, 1100, 100):
            ctl.update(float(hours), hours // 4)
        assert ctl.moves == 0
        assert ctl.updates == 10

    def test_clamp_bounds_a_runaway_estimate(self):
        ctl = self.controller(clamp=2.0)
        ctl.update(1000.0, 10_000_000)    # absurd measured rate
        assert ctl.interval_s == pytest.approx(ctl.prior_interval_s / 2.0)

    def test_zero_rate_evidence_keeps_the_current_interval(self):
        ctl = AdaptiveCheckpointController(delta_s=60.0, prior_mtti_s=3600.0,
                                           prior_weight_h=24.0)
        est = InterruptRateEstimator(prior_rate_per_h=0.0)
        assert est.observe(100.0, 0) == 0.0
        ctl._estimator = est
        start = ctl.interval_s
        assert ctl.update(100.0, 0) == start

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            self.controller(delta_s=0.0)
        with pytest.raises(ConfigurationError):
            self.controller(prior_mtti_s=-1.0)
        with pytest.raises(ConfigurationError):
            self.controller(deadband=1.0)
        with pytest.raises(ConfigurationError):
            self.controller(clamp=0.5)


class TestSparePool:
    def pool_on(self, n_nodes: int, target: int):
        sched = SlurmScheduler(n_nodes=n_nodes, nodes_per_group=8)
        return sched, SparePool.reserve(sched, target)

    def test_reserve_spreads_over_groups(self):
        # 4 groups of 8: a 4-spare pool takes one node per group
        sched, pool = self.pool_on(32, 4)
        assert pool.size == 4
        assert len({n // 8 for n in sched.spare_nodes}) == 4

    def test_reserve_takes_the_top_of_each_group(self):
        sched, _ = self.pool_on(32, 4)
        assert sched.spare_nodes == {7, 15, 23, 31}

    def test_pack_prefers_the_job_heavy_group(self):
        _, pool = self.pool_on(32, 4)
        # job lives in group 0: pack picks group 0's spare (node 7)
        assert pool.take(range(0, 7), policy="pack") == 7

    def test_spread_prefers_the_emptiest_group(self):
        _, pool = self.pool_on(32, 4)
        assert pool.take(range(0, 7), policy="spread") == 15

    def test_any_takes_the_lowest_id(self):
        _, pool = self.pool_on(32, 4)
        assert pool.take(range(0, 7), policy="any") == 7

    def test_exclude_skips_dying_spares(self):
        _, pool = self.pool_on(32, 4)
        assert pool.take(range(0, 7), policy="pack", exclude=(7,)) == 15

    def test_dry_pool_returns_none(self):
        _, pool = self.pool_on(32, 1)
        assert pool.take([0]) is not None
        assert pool.take([0]) is None

    def test_take_removes_the_chosen_node(self):
        _, pool = self.pool_on(32, 2)
        first = pool.take([0])
        assert not pool.holds(first)
        assert pool.size == 1

    def test_reserved_nodes_cannot_be_resumed_as_repairs(self):
        sched, _ = self.pool_on(32, 2)
        with pytest.raises(SchedulerError):
            sched.resume(next(iter(sched.spare_nodes)))


class TestResiliencePolicySpec:
    def test_defaults_are_off(self):
        policy = ResiliencePolicySpec()
        assert policy.is_default
        assert policy.spare_fraction == 0.0
        assert not policy.adaptive_checkpointing
        assert policy.replace_policy == "pack"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicySpec(spare_fraction=0.75)
        with pytest.raises(ConfigurationError):
            ResiliencePolicySpec(spare_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            ResiliencePolicySpec(replace_policy="nearest")

    def test_default_policy_serializes_to_nothing(self):
        """Adding the knobs must not invalidate pre-existing artifacts."""
        assert "resilience" not in frontier_spec().to_dict()
        assert task_hash(frontier_spec(), "mpigraph", 0) == \
            "a64fb20331f0b191"

    def test_default_config_serializes_to_nothing(self):
        assert "adaptive_prior_scale" not in ChaosConfig().to_dict()
        assert "adaptive_prior_scale" in ChaosConfig(
            adaptive_prior_scale=4.0).to_dict()

    def test_policy_round_trips_through_json(self):
        spec = heal_validation_spec(spare_fraction=0.125,
                                    adaptive_checkpointing=True,
                                    replace_policy="spread")
        back = MachineSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.resilience.spare_fraction == 0.125
        assert back.resilience.adaptive_checkpointing
        assert back.resilience.replace_policy == "spread"

    def test_policy_changes_the_run_id(self):
        config = validation_config()
        base = chaos_run_id(validation_spec(), config)
        healed = chaos_run_id(heal_validation_spec(spare_fraction=0.125),
                              config)
        assert base != healed

    def test_prior_scale_rejected_when_not_positive(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(adaptive_prior_scale=0.0)


class TestPolicyArm:
    """run_chaos with a non-default policy: two arms, one timeline."""

    SPEC = heal_validation_spec(failure_scale=200.0, spare_fraction=0.125,
                                adaptive_checkpointing=True)
    CONFIG = validation_config(horizon_h=100.0,
                               job_fractions=(0.25, 0.25, 0.5))

    def test_heal_report_attached(self):
        result = run_chaos(self.SPEC, self.CONFIG)
        assert result.heal is not None
        assert result.heal.spare_target == 4
        assert result.heal.adaptive
        assert result.heal.replacements > 0

    def test_default_policy_has_no_heal_report(self):
        result = run_chaos(validation_spec(failure_scale=200.0),
                           validation_config(horizon_h=100.0))
        assert result.heal is None
        assert "heal" not in result.to_doc()

    def test_deterministic_and_json_clean(self):
        first = run_chaos(self.SPEC, self.CONFIG)
        second = run_chaos(self.SPEC, self.CONFIG)
        assert first.to_doc() == second.to_doc()
        doc = json.loads(json.dumps(first.to_doc()))
        assert doc["heal"]["spare_target"] == 4

    def test_spares_shrink_the_job_sizes(self):
        """Jobs size to usable capacity: the pool is real held-back
        capacity, not free availability."""
        healed = run_chaos(self.SPEC, self.CONFIG)
        unhealed = run_chaos(
            replace(self.SPEC, resilience=ResiliencePolicySpec()),
            self.CONFIG)
        assert [j.n_nodes for j in healed.jobs] == [7, 7, 14]
        assert [j.n_nodes for j in unhealed.jobs] == [8, 8, 16]

    def test_explicit_rng_drives_both_arms_identically(self):
        import numpy as np
        a = run_chaos(self.SPEC, self.CONFIG, rng=np.random.default_rng(7))
        b = run_chaos(self.SPEC, self.CONFIG, rng=np.random.default_rng(7))
        assert a.to_doc() == b.to_doc()


class TestHealGate:
    """The ISSUE's acceptance criteria, asserted as written."""

    def test_enough_events_for_statistics(self, report):
        assert report.enough_events
        assert report.interrupts >= 200

    def test_adaptive_interval_converges_to_daly(self, report):
        """Measured == modeled: steady state within ±10% of the analytic
        ``CheckpointPlan.daly_interval_s``."""
        for i, ratio in enumerate(report.interval_ratios):
            assert abs(ratio - 1.0) <= 0.10, (
                f"job{i}: adaptive/analytic interval ratio {ratio:.4f}")
        assert report.intervals_converged

    def test_adaptive_beats_fixed_under_mismatch(self, report):
        """Prior off by 4x: measured efficiency must beat fixed-analytic."""
        assert report.adaptive_efficiency > report.fixed_efficiency

    def test_healing_strictly_improves_availability(self, report):
        assert report.replacements > 0
        assert report.healed_availability > report.baseline_availability

    def test_gate_passes(self, report):
        assert report.passed

    def test_doc_round_trips_through_json(self, report):
        doc = json.loads(json.dumps(report.to_doc()))
        assert doc["passed"] is True
        assert doc["interrupts"] == report.interrupts
