"""Chaos engine: the cross-validation gate, determinism, artifacts, knobs."""

import dataclasses
import json

import pytest

from repro.chaos import (EFFICIENCY_TOLERANCE, MIN_EVENTS, RATE_TOLERANCE,
                         ChaosConfig, chaos_artifact_path, chaos_run_id,
                         cross_validate, load_chaos_artifact, run_chaos,
                         run_chaos_cached, validation_config, validation_spec)
from repro.errors import ConfigurationError
from repro.sweep.plan import task_hash

#: One validation run per module — ~2,450 events over 1,000 h, shared by
#: every gate assertion below.
_REPORT = None


@pytest.fixture(scope="module")
def report():
    global _REPORT
    if _REPORT is None:
        _REPORT = cross_validate(seed=0)
    return _REPORT


class TestCrossValidationGate:
    """The ISSUE's headline correctness claim, asserted as written."""

    def test_enough_events_for_statistics(self, report):
        assert report.n_events >= MIN_EVENTS

    def test_interrupt_rates_match_mtti_model(self, report):
        for job in report.jobs:
            assert abs(job.rate_ratio - 1.0) <= RATE_TOLERANCE, (
                f"{job.name}: measured {job.measured_rate_per_h:.5f}/h vs "
                f"analytic {job.analytic_rate_per_h:.5f}/h")
            assert job.rate_ok

    def test_daly_efficiency_matches_analytic_model(self, report):
        for job in report.jobs:
            assert abs(job.efficiency_ratio - 1.0) <= EFFICIENCY_TOLERANCE, (
                f"{job.name}: measured {job.measured_efficiency:.4f} vs "
                f"analytic {job.analytic_efficiency:.4f}")
            assert job.efficiency_ok

    def test_gate_passes(self, report):
        assert report.passed

    def test_three_job_sizes(self, report):
        assert [j.n_nodes for j in report.jobs] == [4, 8, 16]

    def test_machine_mostly_available(self, report):
        assert 0.9 < report.machine_availability <= 1.0

    def test_doc_round_trips_through_json(self, report):
        doc = json.loads(json.dumps(report.to_doc()))
        assert doc["passed"] is True
        assert len(doc["jobs"]) == 3


class TestDeterminism:
    def test_same_config_same_result(self):
        spec = validation_spec(failure_scale=100.0)
        config = validation_config(horizon_h=120.0)
        assert (run_chaos(spec, config).to_doc()
                == run_chaos(spec, config).to_doc())

    def test_seed_changes_the_run(self):
        spec = validation_spec(failure_scale=100.0)
        a = run_chaos(spec, validation_config(horizon_h=120.0, seed=0))
        b = run_chaos(spec, validation_config(horizon_h=120.0, seed=1))
        assert a.to_doc() != b.to_doc()


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        {"horizon_h": 0.0},
        {"checkpoint_cost_s": 0.0},
        {"restart_s": -1.0},
        {"storage_slowdown": 0.5},
        {"mttr_scale": 0.0},
        {"job_fractions": ()},
        {"job_fractions": (0.5, 1.5)},
    ])
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ChaosConfig(**bad)

    def test_round_trips_through_dict(self):
        config = ChaosConfig(horizon_h=48.0, seed=3, mttr_scale=0.5,
                             job_fractions=(0.25, 0.5))
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestArtifacts:
    SPEC = validation_spec(failure_scale=50.0)
    CONFIG = validation_config(horizon_h=48.0)

    def test_write_then_resume(self, tmp_path):
        out = str(tmp_path)
        doc, path, resumed = run_chaos_cached(self.SPEC, self.CONFIG,
                                              out_dir=out)
        assert not resumed and doc["status"] == "ok"
        again, path2, resumed2 = run_chaos_cached(self.SPEC, self.CONFIG,
                                                  out_dir=out)
        assert resumed2 and path2 == path and again == doc

    def test_fresh_overwrites(self, tmp_path):
        out = str(tmp_path)
        doc, _, _ = run_chaos_cached(self.SPEC, self.CONFIG, out_dir=out)
        redone, _, resumed = run_chaos_cached(self.SPEC, self.CONFIG,
                                              out_dir=out, fresh=True)
        assert not resumed and redone == doc     # deterministic re-run

    def test_corrupt_artifact_reruns(self, tmp_path):
        out = str(tmp_path)
        run_id = chaos_run_id(self.SPEC, self.CONFIG)
        _, path, _ = run_chaos_cached(self.SPEC, self.CONFIG, out_dir=out)
        with open(path, "w") as fh:
            fh.write("{ truncated")
        assert load_chaos_artifact(out, run_id) is None
        _, _, resumed = run_chaos_cached(self.SPEC, self.CONFIG, out_dir=out)
        assert not resumed

    def test_foreign_or_failed_artifact_distrusted(self, tmp_path):
        out = str(tmp_path)
        run_id = chaos_run_id(self.SPEC, self.CONFIG)
        path = chaos_artifact_path(out, run_id)
        for doc in ({"status": "error", "run_id": run_id, "schema": 1},
                    {"status": "ok", "run_id": "deadbeefdeadbeef",
                     "schema": 1},
                    {"status": "ok", "run_id": run_id, "schema": 999}):
            with open(path, "w") as fh:
                json.dump(doc, fh)
            assert load_chaos_artifact(out, run_id) is None

    def test_run_id_tracks_spec_and_config(self):
        base = chaos_run_id(self.SPEC, self.CONFIG)
        assert base == chaos_run_id(self.SPEC, self.CONFIG)
        assert base != chaos_run_id(validation_spec(failure_scale=51.0),
                                    self.CONFIG)
        assert base != chaos_run_id(
            self.SPEC, dataclasses.replace(self.CONFIG, seed=9))


class TestSpecKnobs:
    """The chaos knobs ride on DegradationSpec without disturbing it."""

    def test_knobs_round_trip_through_spec_json(self):
        from repro.core.scenario import MachineSpec
        spec = validation_spec(failure_scale=300.0,
                               checkpoint_policy="fixed",
                               checkpoint_interval_s=900.0)
        back = MachineSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back.degradation.failure_scale == 300.0
        assert back.degradation.checkpoint_policy == "fixed"
        assert back.degradation.checkpoint_interval_s == 900.0
        assert back == spec

    def test_default_knobs_keep_task_hashes_stable(self):
        """Defaults must serialize to nothing: adding the knobs must not
        have invalidated every pre-existing sweep artifact hash."""
        from repro.core.scenario import frontier_spec
        spec = frontier_spec()
        doc = spec.to_dict()
        deg = doc.get("degradation", {})
        assert "failure_scale" not in deg
        assert "checkpoint_policy" not in deg
        assert "checkpoint_interval_s" not in deg
        assert task_hash(spec, "storage", 0) == task_hash(
            spec.degraded(), "storage", 0)

    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            validation_spec(failure_scale=0.0)
        with pytest.raises(ConfigurationError):
            validation_spec(checkpoint_policy="hourly")
        with pytest.raises(ConfigurationError):
            validation_spec(checkpoint_policy="fixed")   # needs an interval
