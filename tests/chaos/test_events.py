"""Timeline sampling: determinism (in- and cross-process), event shapes."""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import DEFAULT_MTTR_HOURS, sample_timeline
from repro.chaos.events import LINK_COMPONENTS, STORAGE_COMPONENTS
from repro.errors import ConfigurationError
from repro.resilience.fit import frontier_fit_inventory

NODES = 32
HORIZON = 100.0


def timeline(seed=7, scale=200.0, **kw):
    inv = frontier_fit_inventory(nodes=NODES).scaled(scale)
    return sample_timeline(inv, total_nodes=NODES, horizon_h=HORIZON,
                           rng=seed, **kw)


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        assert timeline(seed=7).to_doc() == timeline(seed=7).to_doc()

    def test_different_seed_different_timeline(self):
        assert timeline(seed=7).to_doc() != timeline(seed=8).to_doc()

    def test_timeline_survives_the_process_boundary(self):
        """The determinism contract: the timeline is a pure function of
        (inventory, seed, horizon), not of process or hash randomisation."""
        snippet = (
            "import hashlib, json\n"
            "from repro.chaos import sample_timeline\n"
            "from repro.resilience.fit import frontier_fit_inventory\n"
            f"inv = frontier_fit_inventory(nodes={NODES}).scaled(200.0)\n"
            f"tl = sample_timeline(inv, total_nodes={NODES}, "
            f"horizon_h={HORIZON}, rng=7, uniform_blast=True)\n"
            "blob = json.dumps(tl.to_doc(), sort_keys=True)\n"
            "print(hashlib.sha256(blob.encode()).hexdigest())\n")
        local = timeline(seed=7, uniform_blast=True)
        expected = hashlib.sha256(
            json.dumps(local.to_doc(), sort_keys=True).encode()).hexdigest()
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        digests = set()
        for _ in range(2):
            proc = subprocess.run([sys.executable, "-c", snippet],
                                  capture_output=True, text=True, check=True,
                                  env=env)
            digests.add(proc.stdout.strip())
        assert digests == {expected}


class TestEventShapes:
    def test_sorted_in_time_and_reindexed(self):
        tl = timeline()
        times = [ev.time_h for ev in tl.events]
        assert times == sorted(times)
        assert [ev.index for ev in tl.events] == list(range(len(tl)))

    def test_events_land_inside_the_horizon(self):
        tl = timeline()
        assert all(0.0 < ev.time_h < HORIZON for ev in tl.events)
        assert all(ev.duration_h > 0 for ev in tl.events)

    def test_victims_are_valid_nodes(self):
        for ev in timeline().events:
            assert all(0 <= v < NODES for v in ev.victims)

    def test_uniform_blast_is_all_single_node_deaths(self):
        tl = timeline(uniform_blast=True)
        assert tl.counts() == {"node": len(tl), "link": 0, "storage": 0}
        assert all(len(ev.victims) == 1 for ev in tl.events)

    def test_frontier_radii_split_kinds(self):
        tl = timeline()
        counts = tl.counts()
        assert counts["storage"] > 0          # Orion dominates the inventory
        assert counts["link"] > 0
        for ev in tl.by_kind("storage"):
            assert ev.victims == ()
            assert ev.component in STORAGE_COMPONENTS
        for ev in tl.by_kind("link"):
            assert ev.component in LINK_COMPONENTS
            assert len(ev.victims) == 4       # the blade's node block

    def test_link_population_tags_link_events(self):
        tl = timeline(link_population=(10, 11, 12))
        links = [ev.link for ev in tl.by_kind("link")]
        assert links and all(link in (10, 11, 12) for link in links)
        assert all(ev.link is None for ev in tl.by_kind("node"))

    def test_mttr_scale_shrinks_repairs(self):
        slow = timeline(mttr_scale=1.0)
        fast = timeline(mttr_scale=0.01)
        mean = lambda tl: sum(e.duration_h for e in tl.events) / len(tl)  # noqa: E731
        assert mean(fast) < 0.1 * mean(slow)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            list(timeline().by_kind("gremlin"))


class TestValidation:
    def test_bad_arguments_rejected(self):
        inv = frontier_fit_inventory(nodes=NODES)
        with pytest.raises(ConfigurationError):
            sample_timeline(inv, total_nodes=0, horizon_h=1.0)
        with pytest.raises(ConfigurationError):
            sample_timeline(inv, total_nodes=NODES, horizon_h=0.0)
        with pytest.raises(ConfigurationError):
            sample_timeline(inv, total_nodes=NODES, horizon_h=1.0,
                            mttr_scale=0.0)

    def test_mttr_table_covers_the_frontier_inventory(self):
        names = {e.name for e in frontier_fit_inventory().entries}
        assert names <= set(DEFAULT_MTTR_HOURS)
