"""Power model tests — §5.1's 21.1 MW / 52 GF/W."""

import pytest

from repro.errors import ConfigurationError
from repro.power.model import FrontierPowerModel, PowerComponent


@pytest.fixture(scope="module")
def model() -> FrontierPowerModel:
    return FrontierPowerModel()


class TestHeadlineNumbers:
    def test_hpl_power_21_1_mw(self, model):
        # "Frontier's 1.1 EF using 21.1 MW"
        assert model.hpl_power / 1e6 == pytest.approx(21.1, rel=0.02)

    def test_52_gflops_per_watt(self, model):
        # "an impressive 52 GF/watt"
        assert model.gflops_per_watt == pytest.approx(52.0, rel=0.02)

    def test_under_20_mw_per_exaflop(self, model):
        assert model.mw_per_exaflop < 20.0


class TestBreakdown:
    def test_gpus_dominate(self, model):
        breakdown = model.breakdown()
        assert breakdown["MI250X OAM"] > 0.6

    def test_fractions_sum_to_one(self, model):
        assert sum(model.breakdown().values()) == pytest.approx(1.0)

    def test_compute_fraction(self, model):
        assert 0.7 < model.compute_fraction() < 0.95

    def test_idle_power_much_lower(self, model):
        assert model.total_power(0.0) < 0.5 * model.total_power(1.0)

    def test_power_monotone_in_utilisation(self, model):
        powers = [model.total_power(u) for u in (0.0, 0.3, 0.7, 1.0)]
        assert powers == sorted(powers)


class TestComponent:
    def test_linear_interpolation(self):
        c = PowerComponent("x", count=10, watts_load=100.0, watts_idle=40.0)
        assert c.power(0.0) == 400.0
        assert c.power(1.0) == 1000.0
        assert c.power(0.5) == 700.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerComponent("x", count=-1, watts_load=1.0, watts_idle=0.0)
        with pytest.raises(ConfigurationError):
            PowerComponent("x", count=1, watts_load=1.0, watts_idle=2.0)
        c = PowerComponent("x", count=1, watts_load=1.0, watts_idle=0.0)
        with pytest.raises(ConfigurationError):
            c.power(1.5)


class TestEnergy:
    def test_energy_for_run(self, model):
        assert model.energy_for_run(3600.0) == pytest.approx(
            model.hpl_power * 3600.0)

    def test_negative_duration_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.energy_for_run(-1.0)
