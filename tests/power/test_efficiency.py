"""Efficiency scorecard tests vs the 2008 report's targets."""

import pytest

from repro.power.efficiency import (REPORT_STRAWMAN_MW_PER_EF,
                                    EfficiencyScorecard, green500_entry)


@pytest.fixture(scope="module")
def card() -> EfficiencyScorecard:
    return EfficiencyScorecard.from_model()


class TestReportTargets:
    def test_meets_50_gf_per_watt(self, card):
        # "exceeding the report's 50 GF/watt target"
        assert card.meets_efficiency_target
        assert card.gflops_per_watt > 50.0

    def test_meets_20_mw_per_ef(self, card):
        assert card.meets_power_target

    def test_beats_strawman_by_3_to_8x(self, card):
        # Straw men projected 68-155 MW/EF; Frontier is ~19.
        lo, hi = card.improvement_over_strawman
        assert 3.0 < lo < 4.5
        assert 7.0 < hi < 9.0
        assert REPORT_STRAWMAN_MW_PER_EF == (68.0, 155.0)

    def test_failing_machine_detected(self):
        bad = EfficiencyScorecard(gflops_per_watt=10.0, mw_per_exaflop=100.0)
        assert not bad.meets_power_target
        assert not bad.meets_efficiency_target


class TestGreen500:
    def test_entry_values(self):
        entry = green500_entry()
        # "Frontier debuted on the top of both the TOP500 and the Green500"
        assert entry["top500_rank"] == 1.0
        assert entry["green500_rank"] == 1.0
        assert entry["rmax_EF"] == pytest.approx(1.102)
        assert entry["power_MW"] == pytest.approx(21.1, rel=0.02)
