"""Energy-to-solution tests."""

import pytest

from repro.apps import all_apps
from repro.apps.cholla import Cholla
from repro.power.energy import energy_gain, suite_energy_table


class TestEnergyGains:
    def test_cholla_energy_win(self):
        # 20x speedup at 21.1/13 = 1.62x the power: ~12x less energy
        comp = energy_gain(Cholla())
        assert comp.energy_gain == pytest.approx(20.0 / (21.1 / 13.0),
                                                 rel=0.02)
        assert comp.is_energy_win

    def test_every_paper_app_is_an_energy_win(self):
        # KPP speedups dwarf the power growth for all eleven applications.
        for comp in suite_energy_table():
            assert comp.is_energy_win, comp.application

    def test_suite_covers_all_apps(self):
        table = suite_energy_table()
        assert len(table) == len(all_apps())
        assert {c.application for c in table} == {a.name for a in all_apps()}

    def test_ecp_gains_are_enormous(self):
        gains = {c.application: c.energy_gain for c in suite_energy_table()}
        # Titan -> Frontier grows power 2.6x but WDMApp runs 150x faster.
        assert gains["WDMApp"] > 50
        assert gains["EXAALT"] > 70

    def test_power_ratio_sign(self):
        comp = energy_gain(Cholla())
        assert comp.power_ratio > 1.0   # Frontier draws more than Summit
        assert comp.speedup > comp.power_ratio
