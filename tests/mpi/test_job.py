"""Rank placement tests (the 8-PPN production mapping)."""

import pytest

from repro.errors import ConfigurationError
from repro.mpi.job import JobLayout


class TestLayout:
    def test_contiguous_factory(self):
        layout = JobLayout.contiguous(4, ppn=8)
        assert layout.n_nodes == 4
        assert layout.n_ranks == 32

    def test_node_major_rank_order(self):
        layout = JobLayout.contiguous(2, ppn=8)
        assert layout.placement(0).node == 0
        assert layout.placement(7).node == 0
        assert layout.placement(8).node == 1

    def test_one_rank_per_gcd_at_8ppn(self):
        layout = JobLayout.contiguous(1, ppn=8)
        gcds = [layout.placement(r).gcd for r in range(8)]
        assert gcds == list(range(8))

    def test_two_ranks_share_each_nic_at_8ppn(self):
        # "8 PPN, the expected use-case for most applications" — GCD pairs
        # (0,1)->NIC0, (2,3)->NIC1, ...
        layout = JobLayout.contiguous(1, ppn=8)
        nics = [layout.placement(r).nic for r in range(8)]
        assert nics == [0, 0, 1, 1, 2, 2, 3, 3]
        assert layout.ranks_per_nic() == 2.0

    def test_32ppn_oversubscribes(self):
        layout = JobLayout.contiguous(1, ppn=32)
        assert layout.ranks_per_nic() == 8.0
        # ranks wrap around the GCDs
        assert layout.placement(8).gcd == 0

    def test_endpoint_numbering(self):
        layout = JobLayout(node_ids=(5,), ppn=8)
        assert layout.placement(0).endpoint == 20   # node 5, NIC 0
        assert layout.placement(7).endpoint == 23   # node 5, NIC 3

    def test_endpoints_listing(self):
        layout = JobLayout.contiguous(2, ppn=4)
        assert len(layout.endpoints()) == 8

    def test_pair_endpoints(self):
        layout = JobLayout.contiguous(2, ppn=8)
        pairs = layout.pair_endpoints([(0, 8)])
        assert pairs == [(0, 4)]


class TestValidation:
    def test_rank_out_of_range(self):
        layout = JobLayout.contiguous(1, ppn=8)
        with pytest.raises(ConfigurationError):
            layout.placement(8)
        with pytest.raises(ConfigurationError):
            layout.placement(-1)

    def test_bad_ppn(self):
        with pytest.raises(ConfigurationError):
            JobLayout(node_ids=(0,), ppn=0)

    def test_empty_nodes(self):
        with pytest.raises(ConfigurationError):
            JobLayout(node_ids=())

    def test_duplicate_nodes(self):
        with pytest.raises(ConfigurationError):
            JobLayout(node_ids=(1, 1))
