"""Simulated-MPI cost oracle tests."""

import pytest

from repro.errors import ConfigurationError
from repro.mpi.job import JobLayout
from repro.mpi.simmpi import SimComm


@pytest.fixture()
def comm() -> SimComm:
    return SimComm(JobLayout.contiguous(64, ppn=8))


class TestP2p:
    def test_on_node_is_faster_than_off_node_for_large_messages(self, comm):
        size = 64 * 2 ** 20
        on = comm.p2p_time(0, 1, size)
        off = comm.p2p_time(0, 8, size)
        assert on < off

    def test_off_node_latency_floor(self, comm):
        t = comm.p2p_time(0, 9, 8.0)
        assert 1e-6 < t < 10e-6

    def test_self_send_rejected(self, comm):
        with pytest.raises(ConfigurationError):
            comm.p2p_time(3, 3, 8)

    def test_effective_bandwidth_approaches_nic_share(self, comm):
        bw = comm.effective_bandwidth(0, 8, 1 << 30)
        assert bw == pytest.approx(12.5e9, rel=0.05)   # 25 GB/s / 2 ranks


class TestCollectives:
    def test_small_allreduce_is_latency_bound(self, comm):
        t8 = comm.allreduce_time(8.0)
        assert t8 == pytest.approx(
            comm.allreduce_time(1.0), rel=0.25)

    def test_large_allreduce_adds_bandwidth_term(self, comm):
        t_small = comm.allreduce_time(8.0)
        t_big = comm.allreduce_time(1 << 30)
        assert t_big > t_small + 0.01

    def test_single_rank_free(self):
        c = SimComm(JobLayout.contiguous(1, ppn=1))
        assert c.allreduce_time() == 0.0

    def test_alltoall_time_scales_with_volume(self, comm):
        # 4x the volume costs at least ~2x the time (larger messages also
        # amortise per-message overhead, so scaling is sub-linear).
        t1 = comm.alltoall_time(1 << 20)
        t2 = comm.alltoall_time(1 << 22)
        assert 1.9 * t1 <= t2 <= 4.1 * t1

    def test_barrier_equals_tiny_allreduce(self, comm):
        assert comm.barrier_time() == comm.allreduce_time(8.0)


class TestHaloExchange:
    def test_scales_with_face_size(self, comm):
        t1 = comm.halo_exchange_time(1 << 16)
        t2 = comm.halo_exchange_time(1 << 20)
        assert t2 > t1

    def test_needs_neighbors(self, comm):
        with pytest.raises(ConfigurationError):
            comm.halo_exchange_time(1024, neighbors=0)
