"""Table rendering tests."""

import pytest

from repro.reporting import ComparisonRow, Table, comparison_table, render_kv


class TestTable:
    def test_render_contains_header_and_rows(self):
        t = Table(["Function", "MB/s"], title="STREAM")
        t.add_row(["Copy", 176780.4])
        out = t.render()
        assert "STREAM" in out
        assert "Function" in out
        assert "176780.4" in out

    def test_row_width_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_alignment_is_consistent(self):
        t = Table(["name", "value"])
        t.add_row(["x", 1.0])
        t.add_row(["longer-name", 2.0])
        lines = t.render().splitlines()
        # header, separator, two rows
        assert len(lines) == 4
        assert len(set(line.index("|") for line in lines
                       if "|" in line)) == 1

    def test_custom_float_format(self):
        t = Table(["v"], float_fmt="{:.3f}")
        t.add_row([1.23456])
        assert "1.235" in t.render()

    def test_str_matches_render(self):
        t = Table(["v"])
        t.add_row([1.0])
        assert str(t) == t.render()


class TestComparisonRow:
    def test_ratio(self):
        r = ComparisonRow("x", paper=10.0, measured=11.0)
        assert r.ratio == pytest.approx(1.1)

    def test_within_tolerance(self):
        r = ComparisonRow("x", paper=100.0, measured=104.0)
        assert r.within(0.05)
        assert not r.within(0.03)

    def test_zero_paper_value(self):
        assert ComparisonRow("x", paper=0.0, measured=0.0).within(0.01)
        assert ComparisonRow("x", paper=0.0, measured=1.0).ratio == float("inf")

    def test_comparison_table_renders_all_rows(self):
        rows = [ComparisonRow("a", 1.0, 1.0), ComparisonRow("b", 2.0, 2.2)]
        out = comparison_table(rows, title="T").render()
        assert "a" in out and "b" in out and "Ratio" in out


class TestRenderKv:
    def test_renders_pairs(self):
        out = render_kv({"Nodes": 9472, "FP64 DGEMM": "2.0 EF"}, title="Specs")
        assert "Nodes" in out and "9472" in out and "Specs" in out

    def test_empty_dict(self):
        assert render_kv({}) == ""
