"""Cost-model tests (§2 footnote 1 and §5's cost argument)."""

import pytest

from repro.economics import (CORAL2_BUDGET_RANGE_MUSD,
                             HBM_TO_DDR_PRICE_RATIO,
                             SUPERCOMPUTER_2008_MUSD, SystemCostModel,
                             meets_facility_rule, power_cost_over_life)
from repro.errors import ConfigurationError


class TestTwentyMwRationale:
    def test_footnote_one_arithmetic(self):
        # 100 M$ system / 5 years / 1 M$ per MW-year = 20 MW cap.
        rationale = SystemCostModel().twenty_mw_rationale()
        assert rationale["implied_power_cap_mw"] == pytest.approx(20.0)

    def test_frontier_passes_the_facility_rule(self):
        model = SystemCostModel()
        assert model.meets_facility_rule
        # 21.1 MW x 5 y ~ 105 M$ << the 600 M$ budget
        assert model.lifetime_power_cost_musd == pytest.approx(105.5)

    def test_2008_machine_at_the_cap_breaks_even(self):
        assert meets_facility_rule(20.0, SUPERCOMPUTER_2008_MUSD)
        assert not meets_facility_rule(20.1, SUPERCOMPUTER_2008_MUSD)

    def test_power_cost_scales(self):
        assert power_cost_over_life(10.0, years=2.0) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            power_cost_over_life(-1.0)
        with pytest.raises(ConfigurationError):
            meets_facility_rule(10.0, 0.0)


class TestCostStructure:
    def test_memory_and_storage_claim_45pct(self):
        model = SystemCostModel()
        assert model.memory_plus_storage_share == pytest.approx(0.45)
        assert model.memory_cost_musd == pytest.approx(180.0)

    def test_budget_grew_4_to_6x_not_1000x(self):
        # The paper's core §5 argument.
        low = SystemCostModel(budget_musd=CORAL2_BUDGET_RANGE_MUSD[0])
        high = SystemCostModel(budget_musd=CORAL2_BUDGET_RANGE_MUSD[1])
        assert low.budget_growth_vs_2008() == pytest.approx(4.0)
        assert high.budget_growth_vs_2008() == pytest.approx(6.0)
        args = high.why_not_1000x()
        assert args["resource_ask_vs_2008"] / args["budget_growth_vs_2008"] > 150

    def test_hbm_price_rule_of_thumb(self):
        assert HBM_TO_DDR_PRICE_RATIO == (3.0, 5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemCostModel(budget_musd=0.0)
        with pytest.raises(ConfigurationError):
            SystemCostModel(memory_share=0.9, storage_share=0.2)
