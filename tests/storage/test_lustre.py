"""Orion parallel filesystem tests — reproduces Table 2 and §4.3.2."""

import pytest

from repro.errors import StorageError
from repro.storage.lustre import OrionFilesystem
from repro.storage.pfl import Tier
from repro.units import KB, MB


@pytest.fixture(scope="module")
def fs() -> OrionFilesystem:
    return OrionFilesystem()


#: Table 2 (capacity PB, read TB/s, write TB/s) — theoretical values.
TABLE2 = {
    "Orion Metadata": (10.0, 0.8, 0.4),
    "Orion Performance": (11.5, 10.0, 10.0),
    "Orion Capacity": (679.0, 5.5, 4.6),
}


class TestTable2:
    @pytest.mark.parametrize("row,expected", TABLE2.items())
    def test_matches_paper(self, fs, row, expected):
        cap, read, write = expected
        got = fs.table2()[row]
        assert got["capacity_PB"] == pytest.approx(cap, rel=0.02)
        assert got["read_TBps"] == pytest.approx(read, rel=0.02)
        assert got["write_TBps"] == pytest.approx(write, rel=0.02)


class TestMeasuredRates:
    def test_flash_measured_11_7_and_9_4(self, fs):
        s = fs.tier_stats(Tier.PERFORMANCE, measured=True)
        assert s.read == pytest.approx(11.7e12, rel=0.01)
        assert s.write == pytest.approx(9.4e12, rel=0.01)

    def test_capacity_measured_4_9_and_4_3(self, fs):
        s = fs.tier_stats(Tier.CAPACITY, measured=True)
        assert s.read == pytest.approx(4.9e12, rel=0.01)
        assert s.write == pytest.approx(4.3e12, rel=0.01)

    def test_flash_reads_beat_contract_capacity_reads_miss(self, fs):
        flash_c = fs.tier_stats(Tier.PERFORMANCE).read
        flash_m = fs.tier_stats(Tier.PERFORMANCE, measured=True).read
        disk_c = fs.tier_stats(Tier.CAPACITY).read
        disk_m = fs.tier_stats(Tier.CAPACITY, measured=True).read
        assert flash_m > flash_c
        assert disk_m < disk_c


class TestFileTransfers:
    def test_small_files_see_flash_class_bandwidth(self, fs):
        # "up to 11.7 TB/s for reads ... if the application has small files
        # that fit within the Flash tier"
        bw = fs.effective_read_bandwidth(int(6 * MB))
        assert bw > 5e12

    def test_large_files_see_capacity_class_bandwidth(self, fs):
        # "Large files will see 4.9 TB/s and 4.3 TB/s"
        read = fs.effective_read_bandwidth(10 ** 12)
        write = fs.effective_write_bandwidth(10 ** 12)
        assert read == pytest.approx(4.9e12, rel=0.02)
        assert write == pytest.approx(4.3e12, rel=0.02)

    def test_client_bandwidth_caps_transfers(self, fs):
        free = fs.write_time(10 ** 9)
        capped = fs.write_time(10 ** 9, clients_bandwidth=1e9)
        assert capped > free

    def test_dom_serves_tiny_files_at_open(self, fs):
        assert fs.small_file_open_served(int(200 * KB))
        assert not fs.small_file_open_served(int(1 * MB))

    def test_invalid_size(self, fs):
        with pytest.raises(StorageError):
            fs.write_time(0)
        with pytest.raises(StorageError):
            fs.read_time(-5)
