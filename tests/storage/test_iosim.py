"""I/O scenario tests (§4.3.2's headline calculations)."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.iosim import (CheckpointScenario, ingest_time,
                                 io_walltime_fraction)
from repro.units import GiB, TiB


class TestIngest:
    def test_700_tib_in_about_180_seconds(self):
        # "Orion should be able to ingest ~700 TiB (~776 TB) in ~180 seconds"
        t = ingest_time(700 * TiB)
        assert t == pytest.approx(180.0, rel=0.03)

    def test_walltime_fraction_under_5_pct(self):
        # "most apps will spend less than 5% of walltime per hour doing I/O"
        # 90% of apps write <=15% of GPU memory (4.6 PiB) per hour; at the
        # 15% upper bound the fraction is right at ~5% (180 s / hour).
        hourly = 0.15 * 9472 * 512 * GiB
        assert io_walltime_fraction(hourly) == pytest.approx(0.05, abs=0.005)
        assert io_walltime_fraction(0.9 * hourly) < 0.05

    def test_invalid_volume(self):
        with pytest.raises(ConfigurationError):
            ingest_time(0)


class TestCheckpointScenario:
    @pytest.fixture()
    def scenario(self) -> CheckpointScenario:
        return CheckpointScenario()

    def test_burst_buffer_blocks_much_less_than_pfs(self, scenario):
        # The design rationale for node-local storage: "caching writes".
        assert scenario.burst_time < scenario.direct_pfs_time / 5

    def test_drain_fits_hourly_interval(self, scenario):
        assert scenario.drain_fits_interval

    def test_blocking_fraction_tiny(self, scenario):
        assert scenario.blocking_fraction < 0.01

    def test_checkpoint_volume(self, scenario):
        assert scenario.checkpoint_bytes == pytest.approx(
            9472 * 512 * GiB * 0.15)

    def test_summary_keys(self, scenario):
        s = scenario.summary()
        assert {"checkpoint_TiB", "burst_time_s", "drain_time_s",
                "burst_buffer_speedup", "blocking_fraction"} <= set(s)

    def test_larger_fraction_slower(self):
        small = CheckpointScenario(hbm_fraction=0.05)
        big = CheckpointScenario(hbm_fraction=0.5)
        assert big.burst_time > small.burst_time

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointScenario(hbm_fraction=0.0)
        with pytest.raises(ConfigurationError):
            CheckpointScenario(nodes=0)
