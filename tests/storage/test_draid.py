"""ZFS dRAID geometry tests."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.draid import DraidGeometry
from repro.units import TB


class TestCapacityEfficiency:
    def test_orion_hdd_geometry(self):
        # 8d+2p over 106 children with 1 spare: the capacity-tier layout.
        g = DraidGeometry(data=8, parity=2, children=106, spares=1)
        assert g.capacity_efficiency == pytest.approx(105 / 106 * 0.8)

    def test_orion_nvme_geometry(self):
        # 4d+2p (no spares): the performance-tier layout, 2/3 efficiency.
        g = DraidGeometry(data=4, parity=2, children=12)
        assert g.capacity_efficiency == pytest.approx(2 / 3)

    def test_usable_bytes_whole_ssu(self):
        g = DraidGeometry(data=8, parity=2, children=106, spares=1)
        usable = g.usable_bytes(18 * TB, 212)
        assert usable == pytest.approx(212 * 18e12 * g.capacity_efficiency)

    def test_usable_bytes_requires_tiling(self):
        g = DraidGeometry(data=4, parity=2, children=12)
        with pytest.raises(ConfigurationError):
            g.usable_bytes(3.2 * TB, 25)

    def test_minimal_geometry_defaults_children(self):
        g = DraidGeometry(data=8, parity=2)
        assert g.effective_children == 10
        assert g.capacity_efficiency == pytest.approx(0.8)


class TestResilienceSemantics:
    def test_double_parity_tolerates_two(self):
        g = DraidGeometry(data=8, parity=2, children=106, spares=1)
        assert g.tolerated_failures == 2
        assert g.degraded_read_overhead(0) == 1.0
        assert g.degraded_read_overhead(2) > g.degraded_read_overhead(1) > 1.0

    def test_three_failures_lose_the_vdev(self):
        g = DraidGeometry(data=8, parity=2, children=106, spares=1)
        with pytest.raises(ConfigurationError):
            g.degraded_read_overhead(3)

    def test_write_amplification(self):
        assert DraidGeometry(data=8, parity=2).write_amplification() == 1.25
        assert DraidGeometry(data=4, parity=2).write_amplification() == 1.5


class TestValidation:
    def test_children_must_hold_stripe(self):
        with pytest.raises(ConfigurationError):
            DraidGeometry(data=8, parity=2, children=9)

    def test_positive_data_parity(self):
        with pytest.raises(ConfigurationError):
            DraidGeometry(data=0, parity=2)

    def test_label(self):
        g = DraidGeometry(data=8, parity=2, children=106, spares=1)
        assert g.label() == "dRAID2:8d:106c:1s"
