"""fio workload model tests (§4.3.1 methodology)."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.fio import (FioJob, FioPattern, aggregate_over_nodes,
                               run_fio)


class TestCannedJobs:
    def test_sequential_read_matches_measurement(self):
        r = run_fio(FioJob.sequential_read())
        assert r.bandwidth == pytest.approx(7.1e9, rel=0.02)

    def test_sequential_write_matches_measurement(self):
        r = run_fio(FioJob.sequential_write())
        assert r.bandwidth == pytest.approx(4.2e9, rel=0.02)

    def test_random_read_4k_iops(self):
        r = run_fio(FioJob.random_read_4k())
        assert r.iops == pytest.approx(1.58e6, rel=0.03)

    def test_random_read_is_iops_not_bandwidth_limited(self):
        r = run_fio(FioJob.random_read_4k())
        assert r.bandwidth < 0.95 * run_fio(FioJob.sequential_read()).bandwidth


class TestQueueDepthRamp:
    def test_shallow_queues_underperform(self):
        deep = run_fio(FioJob(FioPattern.SEQ_READ, queue_depth=256))
        shallow = run_fio(FioJob(FioPattern.SEQ_READ, queue_depth=1))
        assert shallow.bandwidth < 0.5 * deep.bandwidth

    def test_monotone_in_queue_depth(self):
        rates = [run_fio(FioJob(FioPattern.RAND_READ, block_bytes=4096,
                                queue_depth=q)).iops
                 for q in (1, 4, 16, 64, 256)]
        assert rates == sorted(rates)


class TestAggregation:
    def test_linear_scaling_over_nodes(self):
        # Exclusive node-local devices scale perfectly with job size.
        r = run_fio(FioJob.sequential_read())
        agg = aggregate_over_nodes(r, 100)
        assert agg.bandwidth == pytest.approx(100 * r.bandwidth)
        assert agg.iops == pytest.approx(100 * r.iops)

    def test_invalid_node_count(self):
        r = run_fio(FioJob.sequential_read())
        with pytest.raises(ConfigurationError):
            aggregate_over_nodes(r, 0)


class TestValidation:
    def test_bad_job_parameters(self):
        with pytest.raises(ConfigurationError):
            FioJob(FioPattern.SEQ_READ, block_bytes=0)
        with pytest.raises(ConfigurationError):
            FioJob(FioPattern.SEQ_READ, queue_depth=0)

    def test_result_reports_bytes_moved(self):
        r = run_fio(FioJob.sequential_read())
        assert r.bytes_moved == pytest.approx(r.bandwidth * r.job.runtime_s)
