"""Node-local NVMe tests (paper §3.3, §4.3.1)."""

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.storage.nvme import NvmeDrive, Raid0Array, node_local_storage


@pytest.fixture()
def array() -> Raid0Array:
    return node_local_storage()


class TestContractedRates:
    def test_node_capacity_3_5_tb(self, array):
        # "~3.5 TB of capacity"
        assert array.capacity_bytes == pytest.approx(3.5e12)

    def test_node_peak_8_4_gbs(self, array):
        # "8 GB/s for reads, 4 GB/s for writes"
        assert array.seq_read == pytest.approx(8e9)
        assert array.seq_write == pytest.approx(4e9)

    def test_node_peak_2_2_miops(self, array):
        # "up to 2.2 million IOPS, per Frontier node"
        assert array.rand_read_iops == pytest.approx(2.2e6)


class TestMeasuredRates:
    def test_measured_7_1_gbs_read(self, array):
        assert array.sustained_seq_read == pytest.approx(7.1e9, rel=0.01)

    def test_measured_4_2_gbs_write(self, array):
        # measured writes beat the 4 GB/s contract
        assert array.sustained_seq_write == pytest.approx(4.2e9, rel=0.01)
        assert array.sustained_seq_write > array.seq_write

    def test_measured_1_58_miops(self, array):
        assert array.sustained_rand_read_iops == pytest.approx(1.58e6,
                                                               rel=0.01)

    def test_full_system_aggregates(self, array):
        # §4.3.1: 67.3 TB/s reads, 39.8 TB/s writes, ~15 billion IOPS.
        nodes = 9472
        assert nodes * array.sustained_seq_read == pytest.approx(67.3e12,
                                                                 rel=0.01)
        assert nodes * array.sustained_seq_write == pytest.approx(39.8e12,
                                                                  rel=0.01)
        assert nodes * array.sustained_rand_read_iops == pytest.approx(
            15.0e9, rel=0.01)


class TestRaid0Semantics:
    def test_striping_round_robins(self, array):
        stripe = array.stripe_bytes
        assert array.stripe_for_offset(0) == 0
        assert array.stripe_for_offset(stripe) == 1
        assert array.stripe_for_offset(2 * stripe) == 0

    def test_no_redundancy(self, array):
        assert array.survives_failures(0)
        assert not array.survives_failures(1)

    def test_negative_offset_rejected(self, array):
        with pytest.raises(StorageError):
            array.stripe_for_offset(-1)

    def test_empty_array_rejected(self):
        with pytest.raises(ConfigurationError):
            Raid0Array(drives=())

    def test_capacity_sums(self):
        arr = Raid0Array(drives=(NvmeDrive(), NvmeDrive(), NvmeDrive()))
        assert arr.capacity_bytes == pytest.approx(3 * NvmeDrive().capacity_bytes)

    def test_drive_validation(self):
        with pytest.raises(ConfigurationError):
            NvmeDrive(capacity_bytes=0)
