"""Scalable Storage Unit tests (Orion building block)."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.ssu import ScalableStorageUnit


@pytest.fixture()
def ssu() -> ScalableStorageUnit:
    return ScalableStorageUnit()


class TestComposition:
    def test_drive_counts(self, ssu):
        # "(24) 3.2 TB NVMe drives, and (212) 18 TB hard drives"
        assert ssu.nvme_count == 24
        assert ssu.hdd_count == 212

    def test_network_bandwidth_100_gbs(self, ssu):
        # 2 controllers x 2 Cassini NICs x 25 GB/s
        assert ssu.network_bandwidth == pytest.approx(100e9)


class TestTierRates:
    def test_flash_contract_rates_sum_to_10_tbs(self, ssu):
        assert 225 * ssu.flash_read == pytest.approx(10e12, rel=0.01)
        assert 225 * ssu.flash_write == pytest.approx(10e12, rel=0.01)

    def test_flash_measured_rates(self, ssu):
        # measured 11.7 / 9.4 TB/s over 225 SSUs
        assert 225 * ssu.flash_read_measured == pytest.approx(11.7e12,
                                                              rel=0.01)
        assert 225 * ssu.flash_write_measured == pytest.approx(9.4e12,
                                                               rel=0.01)

    def test_disk_contract_rates(self, ssu):
        assert 225 * ssu.disk_read == pytest.approx(5.5e12, rel=0.01)
        assert 225 * ssu.disk_write == pytest.approx(4.6e12, rel=0.01)

    def test_disk_measured_rates(self, ssu):
        assert 225 * ssu.disk_read_measured == pytest.approx(4.9e12, rel=0.01)
        assert 225 * ssu.disk_write_measured == pytest.approx(4.3e12, rel=0.01)

    def test_rates_never_exceed_the_network(self, ssu):
        for rate in (ssu.flash_read, ssu.flash_write, ssu.disk_read,
                     ssu.disk_write, ssu.flash_read_measured):
            assert rate <= ssu.network_bandwidth


class TestCapacities:
    def test_flash_capacity_11_5_pb_system(self, ssu):
        assert 225 * ssu.flash_capacity == pytest.approx(11.5e15, rel=0.01)

    def test_disk_capacity_679_pb_system(self, ssu):
        assert 225 * ssu.disk_capacity == pytest.approx(679e15, rel=0.01)


class TestValidation:
    def test_drives_must_tile_vdevs(self):
        with pytest.raises(ConfigurationError):
            ScalableStorageUnit(nvme_count=25)
        with pytest.raises(ConfigurationError):
            ScalableStorageUnit(hdd_count=211)
