"""Progressive File Layout placement tests (§3.3)."""

import pytest

from repro.errors import StorageError
from repro.storage.pfl import ORION_PFL, Extent, ProgressiveFileLayout, Tier
from repro.units import KB, MB


class TestOrionLayout:
    def test_tiny_file_lands_in_dom(self):
        # "the first 256 KB of data of each file [lands] in the flash-based
        # metadata servers using Lustre's Data-on-Metadata feature"
        extents = ORION_PFL.place(int(100 * KB))
        assert len(extents) == 1
        assert extents[0].tier is Tier.METADATA

    def test_medium_file_spans_dom_and_flash(self):
        extents = ORION_PFL.place(int(4 * MB))
        assert [e.tier for e in extents] == [Tier.METADATA, Tier.PERFORMANCE]
        assert extents[0].length == int(256 * KB)

    def test_large_file_uses_all_three_tiers(self):
        extents = ORION_PFL.place(int(100 * MB))
        assert [e.tier for e in extents] == [Tier.METADATA, Tier.PERFORMANCE,
                                             Tier.CAPACITY]
        assert extents[1].end == int(8 * MB)
        assert extents[2].end == int(100 * MB)

    def test_boundaries_exact(self):
        per_tier = ORION_PFL.bytes_per_tier(int(100 * MB))
        assert per_tier[Tier.METADATA] == int(256 * KB)
        assert per_tier[Tier.PERFORMANCE] == int(8 * MB) - int(256 * KB)
        assert per_tier[Tier.CAPACITY] == int(100 * MB) - int(8 * MB)

    def test_served_at_open(self):
        # "the contents are returned when the file is opened without having
        # to then contact an object server"
        assert ORION_PFL.served_at_open(int(256 * KB))
        assert not ORION_PFL.served_at_open(int(256 * KB) + 1)


class TestPartitionInvariants:
    @pytest.mark.parametrize("size", [1, 1000, int(256 * KB), int(256 * KB) + 1,
                                      int(8 * MB), int(8 * MB) + 1, 10 ** 9])
    def test_extents_exactly_cover_the_file(self, size):
        extents = ORION_PFL.place(size)
        assert extents[0].start == 0
        assert extents[-1].end == size
        for prev, cur in zip(extents, extents[1:]):
            assert prev.end == cur.start

    def test_zero_byte_file_has_no_extents(self):
        assert ORION_PFL.place(0) == []

    def test_negative_size_rejected(self):
        with pytest.raises(StorageError):
            ORION_PFL.place(-1)


class TestLayoutValidation:
    def test_boundaries_must_increase(self):
        with pytest.raises(StorageError):
            ProgressiveFileLayout(components=((10, Tier.METADATA),
                                              (10, Tier.PERFORMANCE)))

    def test_invalid_extent(self):
        with pytest.raises(StorageError):
            Extent(Tier.CAPACITY, 10, 10)
        with pytest.raises(StorageError):
            Extent(Tier.CAPACITY, -1, 5)

    def test_empty_layout_everything_in_final_tier(self):
        layout = ProgressiveFileLayout(components=())
        extents = layout.place(1000)
        assert len(extents) == 1
        assert extents[0].tier is Tier.CAPACITY
        assert not layout.served_at_open(10)
