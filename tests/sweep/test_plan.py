"""Grid expansion: determinism, dedup, hashing, axis semantics."""

from __future__ import annotations

import pytest

from repro.core.scenario import frontier_spec
from repro.errors import ConfigurationError
from repro.fabric.topology import LinkKind
from repro.sweep.plan import (AXES, SweepPlan, SweepTask, apply_axes,
                              derive_seed, scaled_fraction, task_hash)

BASE = frontier_spec()
AXES_6 = {"scale": (0.1,), "disabled_links": (0, 4, 8),
          "routing": ("minimal", "ugal")}


class TestAxes:
    def test_scale_identity_at_one(self):
        assert apply_axes(BASE, {"scale": 1.0}) == BASE

    def test_scale_shrinks_every_dimension(self):
        spec = apply_axes(BASE, {"scale": 0.1})
        assert spec.fabric.groups == 7
        assert spec.fabric.switches_per_group == 3
        assert spec.fabric.endpoints_per_switch == 2
        assert spec.node_count == spec.fabric_config().total_endpoints // 4

    def test_scale_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            scaled_fraction(BASE, 0.0)
        with pytest.raises(ConfigurationError):
            scaled_fraction(BASE, 1.5)

    def test_routing_validates_at_plan_time(self):
        assert apply_axes(BASE, {"routing": "minimal"}).routing == "minimal"
        with pytest.raises(ConfigurationError):
            apply_axes(BASE, {"routing": "teleport"})

    def test_disabled_links_picks_global_links_only(self):
        from repro.fabric.dragonfly import build_dragonfly
        spec = apply_axes(BASE, {"scale": 0.1, "disabled_links": 4})
        topo = build_dragonfly(spec.fabric_config())
        assert len(spec.degradation.failed_links) == 4
        for index in spec.degradation.failed_links:
            assert topo.link(index).kind is LinkKind.L2

    def test_disabled_links_spread_across_the_fabric(self):
        spec = apply_axes(BASE, {"scale": 0.1, "disabled_links": 4})
        a, b, c, d = spec.degradation.failed_links
        assert b - a > 1 and c - b > 1 and d - c > 1   # not clustered

    def test_too_many_disabled_links_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_axes(BASE, {"scale": 0.1, "disabled_links": 10_000})

    def test_disabled_nodes_drains_prefix(self):
        spec = apply_axes(BASE, {"disabled_nodes": 3})
        assert spec.degradation.failed_nodes == (0, 1, 2)
        assert spec.healthy_node_count == BASE.node_count - 3

    def test_scale_applies_before_degradation(self):
        """Declared order must not matter: scaling resets degradation, so
        the expander applies scale first no matter how axes were written."""
        spec = apply_axes(BASE, {"disabled_links": 2, "scale": 0.1})
        assert len(spec.degradation.failed_links) == 2

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axes"):
            apply_axes(BASE, {"warp": 9})

    def test_axis_registry_application_order(self):
        # machine_family replaces the spec wholesale, so it must land
        # before everything; scale resets degradation, so it goes next.
        assert list(AXES)[:2] == ["machine_family", "scale"]

    def test_failure_scale_axis_sets_the_chaos_knob(self):
        spec = apply_axes(BASE, {"failure_scale": 300})
        assert spec.degradation.failure_scale == 300.0
        with pytest.raises(ConfigurationError):
            apply_axes(BASE, {"failure_scale": 0.0})

    def test_failure_scale_survives_rescaling(self):
        spec = apply_axes(BASE, {"scale": 0.1, "failure_scale": 300})
        assert spec.degradation.failure_scale == 300.0

    def test_checkpoint_policy_axis_names_a_policy(self):
        spec = apply_axes(BASE, {"checkpoint_policy": "young"})
        assert spec.degradation.checkpoint_policy == "young"
        assert spec.degradation.checkpoint_interval_s is None
        with pytest.raises(ConfigurationError):
            apply_axes(BASE, {"checkpoint_policy": "hourly"})

    def test_numeric_checkpoint_policy_means_fixed_interval(self):
        spec = apply_axes(BASE, {"checkpoint_policy": 900})
        assert spec.degradation.checkpoint_policy == "fixed"
        assert spec.degradation.checkpoint_interval_s == 900.0

    def test_ecn_k_axis_sets_threshold_and_zero_means_fifo(self):
        spec = apply_axes(BASE, {"ecn_k": 60})
        assert spec.congestion.ecn and spec.congestion.ecn_k == 60
        fifo = apply_axes(BASE, {"ecn_k": 0})
        assert not fifo.congestion.ecn
        with pytest.raises(ConfigurationError):
            apply_axes(BASE, {"ecn_k": -1})

    def test_burst_duty_axis(self):
        spec = apply_axes(BASE, {"burst_duty": 0.3})
        assert spec.congestion.burst_duty == 0.3
        with pytest.raises(ConfigurationError):
            apply_axes(BASE, {"burst_duty": 0.0})

    def test_incast_fanin_axis(self):
        spec = apply_axes(BASE, {"incast_fanin": 16})
        assert spec.congestion.incast_fanin == 16

    def test_congestion_axes_survive_rescaling(self):
        spec = apply_axes(BASE, {"scale": 0.1, "ecn_k": 10,
                                 "burst_duty": 0.5})
        assert spec.congestion.ecn_k == 10
        assert spec.congestion.burst_duty == 0.5


class TestTaskIdentity:
    def test_hash_is_content_addressed(self):
        a = task_hash(BASE, "mpigraph", 1)
        assert a == task_hash(frontier_spec(), "mpigraph", 1)
        assert a != task_hash(BASE, "mpigraph", 2)
        assert a != task_hash(BASE, "comm", 1)
        assert a != task_hash(BASE.scaled(8, 4, 4), "mpigraph", 1)

    def test_derived_seed_ignores_grid_position(self):
        small = SweepPlan.grid(BASE, {"scale": (0.1,)}, seed=7)
        big = SweepPlan.grid(BASE, {"scale": (0.2, 0.1)}, seed=7)
        by_id_small = {t.task_id: t for t in small.tasks}
        by_id_big = {t.task_id: t for t in big.tasks}
        shared = set(by_id_small) & set(by_id_big)
        assert shared
        for tid in shared:
            assert by_id_small[tid].seed == by_id_big[tid].seed

    def test_derived_seed_changes_with_sweep_seed(self):
        assert derive_seed(BASE, "mpigraph", 0) != \
            derive_seed(BASE, "mpigraph", 1)


class TestGrid:
    def test_expansion_size_and_determinism(self):
        a = SweepPlan.grid(BASE, AXES_6, probes=("mpigraph",), seed=7)
        b = SweepPlan.grid(BASE, AXES_6, probes=("mpigraph",), seed=7)
        assert len(a) == 6
        assert a.task_ids() == b.task_ids()
        assert a == b

    def test_identical_points_dedupe(self):
        plan = SweepPlan.grid(BASE, {"scale": (1.0, 1.0)})
        assert len(plan) == 1

    def test_probes_multiply_the_grid(self):
        plan = SweepPlan.grid(BASE, {"scale": (0.1,)},
                              probes=("mpigraph", "comm"))
        assert len(plan) == 2
        assert {t.probe for t in plan.tasks} == {"mpigraph", "comm"}

    def test_axes_recorded_on_tasks(self):
        plan = SweepPlan.grid(BASE, AXES_6)
        assert dict(plan.tasks[0].axes) == {
            "scale": 0.1, "disabled_links": 0, "routing": "minimal"}

    def test_unknown_probe_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep probes"):
            SweepPlan.grid(BASE, {}, probes=("frobnicate",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepPlan.grid(BASE, {"scale": ()})

    def test_no_probes_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepPlan.grid(BASE, {}, probes=())

    def test_tasks_are_picklable(self):
        import pickle
        task = SweepPlan.grid(BASE, AXES_6).tasks[0]
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert clone.task_id == task.task_id


class TestSpecDir:
    def test_directory_of_specs_expands_sorted(self, tmp_path):
        small = BASE.scaled(8, 4, 4)
        smaller = BASE.scaled(6, 4, 4)
        small.save(str(tmp_path / "b_small.json"))
        smaller.save(str(tmp_path / "a_smaller.json"))
        (tmp_path / "notes.txt").write_text("ignored")
        plan = SweepPlan.from_spec_dir(str(tmp_path), probes=("comm",))
        assert len(plan) == 2
        assert plan.tasks[0].spec == smaller       # sorted by filename
        assert plan.tasks[0].axes == (("spec_file", "a_smaller.json"),)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no .*json"):
            SweepPlan.from_spec_dir(str(tmp_path))


class TestTaskDocument:
    def test_to_dict_carries_identity_and_provenance(self):
        task = SweepTask(spec=BASE.scaled(8, 4, 4), probe="comm", seed=9,
                         axes=(("scale", 0.1),))
        doc = task.to_dict()
        assert doc["id"] == task.task_id
        assert doc["probe"] == "comm"
        assert doc["seed"] == 9
        assert doc["axes"] == {"scale": 0.1}
        assert doc["spec"] == task.spec.to_dict()
