"""Sweep execution: artifacts, resume, retries, timeouts, metrics merge.

Pool tests go through real worker processes (fork is cheap on Linux);
fault injection uses the ``failing``/``flaky``/``sleepy`` probes from
:mod:`repro.sweep.probes` because monkeypatching does not survive the
process boundary.
"""

from __future__ import annotations

import json
import os

from concurrent.futures import ProcessPoolExecutor

from repro.core.scenario import frontier_spec
from repro.sweep import (ExecPolicy, SweepConfig, SweepPlan, backoff_delay,
                         execute_task, execute_tasks, results_table,
                         run_sweep)
from repro.sweep.artifacts import artifact_path

SMALL = frontier_spec().scaled(6, 4, 4)


def storage_plan(n_tasks: int = 3) -> SweepPlan:
    """A plan of fast, pure-accounting tasks (no fabric simulation)."""
    return SweepPlan.grid(SMALL,
                          {"disabled_nodes": tuple(range(n_tasks))},
                          probes=("storage",))


def inline(out_dir, **kw) -> SweepConfig:
    kw.setdefault("workers", 0)
    kw.setdefault("backoff_s", 0.0)
    return SweepConfig(out_dir=str(out_dir), **kw)


class TestExecuteTask:
    def test_ok_document(self):
        task = storage_plan(1).tasks[0]
        doc = execute_task(task, isolate_obs=False)
        assert doc["status"] == "ok"
        assert doc["task"]["id"] == task.task_id
        assert doc["values"] and all(
            isinstance(v, float) for v in doc["values"].values())
        assert doc["timing"]["attempts"] == 1
        assert doc["metrics"] == {}   # inline: parent registry untouched

    def test_error_document_is_structured(self):
        task = SweepPlan.grid(SMALL, {}, probes=("failing",)).tasks[0]
        doc = execute_task(task, attempt=2, isolate_obs=False)
        assert doc["status"] == "error"
        assert doc["error"]["type"] == "RuntimeError"
        assert "injected sweep failure" in doc["error"]["message"]
        assert "probe_failing" in doc["error"]["traceback"]
        assert doc["timing"]["attempts"] == 2

    def test_never_raises_and_is_json_safe(self):
        task = SweepPlan.grid(SMALL, {}, probes=("failing",)).tasks[0]
        json.dumps(execute_task(task, isolate_obs=False))


class TestInlineSweep:
    def test_one_artifact_per_task(self, tmp_path):
        plan = storage_plan(3)
        summary = run_sweep(plan, inline(tmp_path))
        assert summary.planned == summary.run == 3
        assert summary.skipped == summary.failed == 0
        assert sorted(summary.artifacts) == sorted(plan.task_ids())
        for tid in plan.task_ids():
            assert os.path.exists(artifact_path(str(tmp_path), tid))
        assert all(d["status"] == "ok" for d in summary.artifacts.values())

    def test_resume_skips_completed(self, tmp_path):
        plan = storage_plan(3)
        run_sweep(plan, inline(tmp_path))
        again = run_sweep(plan, inline(tmp_path))
        assert again.skipped == 3
        assert again.run == 0
        # resumed artifacts still feed the summary/report
        assert sorted(again.artifacts) == sorted(plan.task_ids())

    def test_fresh_reruns_completed(self, tmp_path):
        plan = storage_plan(2)
        run_sweep(plan, inline(tmp_path))
        again = run_sweep(plan, inline(tmp_path, resume=False))
        assert again.run == 2
        assert again.skipped == 0

    def test_partial_resume_runs_only_the_gap(self, tmp_path):
        plan = storage_plan(3)
        run_sweep(SweepPlan(tasks=plan.tasks[:1]), inline(tmp_path))
        summary = run_sweep(plan, inline(tmp_path))
        assert summary.skipped == 1
        assert summary.run == 2

    def test_error_artifacts_are_retried_on_resume(self, tmp_path):
        plan = SweepPlan.grid(SMALL, {}, probes=("failing",))
        first = run_sweep(plan, inline(tmp_path, retries=0))
        assert first.failed == 1
        again = run_sweep(plan, inline(tmp_path, retries=0))
        assert again.skipped == 0   # an error artifact is not "completed"
        assert again.run == 1

    def test_two_fresh_runs_identical_modulo_timing(self, tmp_path):
        plan = storage_plan(2)
        a = run_sweep(plan, inline(tmp_path / "a"))
        b = run_sweep(plan, inline(tmp_path / "b"))

        def stripped(summary):
            return {tid: {k: v for k, v in doc.items() if k != "timing"}
                    for tid, doc in summary.artifacts.items()}

        assert stripped(a) == stripped(b)

    def test_failure_does_not_abort_the_sweep(self, tmp_path):
        plan = SweepPlan.grid(SMALL, {}, probes=("failing", "storage"))
        summary = run_sweep(plan, inline(tmp_path, retries=1))
        assert summary.run == 2
        assert summary.failed == 1
        assert summary.retried == 1   # the failing task burned its retry
        by_probe = {d["task"]["probe"]: d for d in summary.artifacts.values()}
        assert by_probe["storage"]["status"] == "ok"
        assert by_probe["failing"]["status"] == "error"
        assert by_probe["failing"]["timing"]["attempts"] == 2

    def test_flaky_task_recovers_on_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FLAKY_DIR", str(tmp_path))
        plan = SweepPlan.grid(SMALL, {}, probes=("flaky",))
        summary = run_sweep(plan, inline(tmp_path / "out", retries=1))
        assert summary.failed == 0
        assert summary.retried == 1
        doc = next(iter(summary.artifacts.values()))
        assert doc["status"] == "ok"
        assert doc["values"]["recovered"] == 1.0
        assert doc["timing"]["attempts"] == 2

    def test_progress_callback_sees_every_task(self, tmp_path):
        lines: list[str] = []
        run_sweep(storage_plan(2), inline(tmp_path), progress=lines.append)
        assert sum(1 for line in lines if line.startswith("done ")) == 2


class TestPoolSweep:
    def test_workers_produce_artifacts_and_merged_metrics(self, tmp_path):
        plan = SweepPlan.grid(frontier_spec(),
                              {"scale": (0.1,),
                               "routing": ("minimal", "ugal")},
                              probes=("mpigraph",))
        config = SweepConfig(out_dir=str(tmp_path), workers=2, backoff_s=0.0)
        summary = run_sweep(plan, config)
        assert summary.run == 2
        assert summary.failed == 0
        for doc in summary.artifacts.values():
            assert doc["status"] == "ok"
            assert doc["values"]["min_gbs"] > 0
            assert doc["metrics"]   # worker-isolated registry snapshot
        # the per-worker snapshots were folded into one registry
        assert summary.metrics.names()

    def test_pool_resume_round_trip(self, tmp_path):
        plan = storage_plan(3)
        config = SweepConfig(out_dir=str(tmp_path), workers=2, backoff_s=0.0)
        first = run_sweep(plan, config)
        assert first.run == 3
        again = run_sweep(plan, config)
        assert again.skipped == 3
        assert again.run == 0

    def test_pool_failure_is_retried_then_recorded(self, tmp_path):
        plan = SweepPlan.grid(SMALL, {}, probes=("failing", "storage"))
        config = SweepConfig(out_dir=str(tmp_path), workers=2, retries=1,
                             backoff_s=0.0)
        summary = run_sweep(plan, config)
        assert summary.run == 2
        assert summary.failed == 1
        assert summary.retried == 1
        by_probe = {d["task"]["probe"]: d for d in summary.artifacts.values()}
        assert by_probe["failing"]["status"] == "error"
        assert by_probe["failing"]["error"]["type"] == "RuntimeError"
        assert by_probe["storage"]["status"] == "ok"

    def test_timeout_abandons_the_task(self, tmp_path, monkeypatch):
        # Keep the sleep short: abandoned workers are still joined when
        # the interpreter exits.
        monkeypatch.setenv("REPRO_SWEEP_SLEEP_S", "1.2")
        plan = SweepPlan.grid(SMALL, {}, probes=("sleepy",))
        config = SweepConfig(out_dir=str(tmp_path), workers=1,
                             timeout_s=0.25, retries=0, backoff_s=0.0)
        summary = run_sweep(plan, config)
        assert summary.timed_out == 1
        assert summary.failed == 1
        doc = next(iter(summary.artifacts.values()))
        assert doc["status"] == "error"
        assert doc["error"]["type"] == "TimeoutError"
        assert "--timeout" in doc["error"]["message"]


class TestExecuteTasks:
    """The reusable pool/timeout/retry core shared with repro.serve."""

    def test_serial_delivers_one_result_per_task(self):
        tasks = storage_plan(3).tasks
        docs: list[dict] = []
        execute_tasks(tasks, ExecPolicy(workers=0), on_result=docs.append)
        assert sorted(d["task"]["id"] for d in docs) == \
            sorted(t.task_id for t in tasks)
        assert all(d["status"] == "ok" for d in docs)

    def test_serial_retry_callbacks_fire(self):
        tasks = SweepPlan.grid(SMALL, {}, probes=("failing",)).tasks
        docs: list[dict] = []
        retries: list[tuple[str, str]] = []
        execute_tasks(tasks, ExecPolicy(workers=0, retries=2, backoff_s=0.0),
                      on_result=docs.append,
                      on_retry=lambda t, reason: retries.append(
                          (t.task_id, reason)))
        assert len(docs) == 1
        assert docs[0]["status"] == "error"
        assert docs[0]["timing"]["attempts"] == 3
        assert retries == [(tasks[0].task_id, "RuntimeError")] * 2

    def test_callbacks_default_to_noops(self):
        tasks = SweepPlan.grid(SMALL, {}, probes=("failing",)).tasks
        docs: list[dict] = []
        execute_tasks(tasks, ExecPolicy(workers=0, retries=1, backoff_s=0.0),
                      on_result=docs.append)
        assert docs[0]["status"] == "error"

    def test_external_executor_is_reused_not_shut_down(self):
        """The scenario service's warm pool: many execute_tasks calls
        through one caller-owned executor, which stays usable after."""
        tasks = storage_plan(2).tasks
        with ProcessPoolExecutor(max_workers=2) as pool:
            for _ in range(2):
                docs: list[dict] = []
                execute_tasks(tasks, ExecPolicy(workers=2, backoff_s=0.0),
                              on_result=docs.append, executor=pool)
                assert len(docs) == 2
                assert all(d["status"] == "ok" for d in docs)
            # still alive: a direct submit round-trips
            assert pool.submit(int, "7").result() == 7

    def test_pool_timeout_fires_on_timeout_callback(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_SLEEP_S", "1.2")
        tasks = SweepPlan.grid(SMALL, {}, probes=("sleepy",)).tasks
        docs: list[dict] = []
        timed_out: list[str] = []
        execute_tasks(tasks,
                      ExecPolicy(workers=1, timeout_s=0.25, retries=0,
                                 backoff_s=0.0),
                      on_result=docs.append,
                      on_timeout=lambda t: timed_out.append(t.task_id))
        assert timed_out == [tasks[0].task_id]
        assert docs[0]["status"] == "error"
        assert docs[0]["error"]["type"] == "TimeoutError"


class TestBackoffJitter:
    """Decorrelated retry jitter: deterministic, bounded, off when off."""

    POLICY = ExecPolicy(backoff_s=0.1, backoff_cap_s=2.0)
    TASK = storage_plan(1).tasks[0]

    def test_zero_backoff_stays_zero(self):
        policy = ExecPolicy(backoff_s=0.0)
        assert backoff_delay(policy, self.TASK, 1, 0.0) == 0.0
        assert backoff_delay(policy, self.TASK, 5, 100.0) == 0.0

    def test_delay_is_deterministic_per_task_and_attempt(self):
        a = backoff_delay(self.POLICY, self.TASK, 1, 0.1)
        b = backoff_delay(self.POLICY, self.TASK, 1, 0.1)
        assert a == b

    def test_different_tasks_decorrelate(self):
        """A herd of tasks retrying at once must not sleep in lockstep."""
        tasks = storage_plan(8).tasks
        delays = {backoff_delay(self.POLICY, t, 1, 0.1) for t in tasks}
        assert len(delays) > 1

    def test_attempts_draw_fresh_jitter(self):
        delays = {backoff_delay(self.POLICY, self.TASK, a, 0.1)
                  for a in range(1, 6)}
        assert len(delays) > 1

    def test_delay_bounded_by_base_and_cap(self):
        prev = self.POLICY.backoff_s
        for attempt in range(1, 20):
            prev = backoff_delay(self.POLICY, self.TASK, attempt, prev)
            assert self.POLICY.backoff_s <= prev <= self.POLICY.backoff_cap_s

    def test_window_grows_toward_the_cap(self):
        """With prev at the cap, the draw spans [base, cap] — not 3x prev."""
        delay = backoff_delay(self.POLICY, self.TASK, 3, 100.0)
        assert self.POLICY.backoff_s <= delay <= self.POLICY.backoff_cap_s

    def test_sweep_config_threads_the_cap(self):
        config = SweepConfig(out_dir="x", backoff_s=0.2, backoff_cap_s=5.0)
        policy = config.policy()
        assert policy.backoff_s == 0.2
        assert policy.backoff_cap_s == 5.0


class TestReporting:
    def test_counts_line(self, tmp_path):
        summary = run_sweep(storage_plan(2), inline(tmp_path))
        assert summary.counts_line() == \
            "planned: 2 | run: 2 | skipped: 0 | retried: 0 | failed: 0"

    def test_results_table_axes_as_columns(self, tmp_path):
        plan = SweepPlan.grid(SMALL, {"disabled_nodes": (0, 2)},
                              probes=("storage", "failing"))
        summary = run_sweep(plan, inline(tmp_path, retries=0))
        rendered = results_table(summary.artifacts.values()).render()
        assert "disabled_nodes" in rendered
        assert "burst_time_s" in rendered
        assert "error" in rendered and "ok" in rendered
        # one row per artifact
        assert rendered.count("storage") == 2
        assert rendered.count("failing") == 2

    def test_ok_artifacts_filters_errors(self, tmp_path):
        plan = SweepPlan.grid(SMALL, {}, probes=("storage", "failing"))
        summary = run_sweep(plan, inline(tmp_path, retries=0))
        ok = summary.ok_artifacts()
        assert len(ok) == 1
        assert ok[0]["task"]["probe"] == "storage"


class TestSubmissionOrder:
    def test_same_fabric_tasks_land_consecutively(self):
        from repro.sweep.plan import SweepTask
        from repro.sweep.runner import _submission_order
        other = frontier_spec().scaled(4, 4, 4)
        tasks = []
        for seed in range(3):
            tasks.append(SweepTask(spec=SMALL, probe="storage", seed=seed))
            tasks.append(SweepTask(spec=other, probe="storage", seed=seed))
        ordered = _submission_order(tasks)
        fabrics = [repr(t.spec.fabric) for t in ordered]
        # interleaved input comes out grouped: one contiguous run per fabric
        changes = sum(1 for a, b in zip(fabrics, fabrics[1:]) if a != b)
        assert changes == 1
        assert sorted(t.task_id for t in ordered) == \
            sorted(t.task_id for t in tasks)

    def test_order_is_deterministic(self):
        from repro.sweep.plan import SweepTask
        from repro.sweep.runner import _submission_order
        tasks = [SweepTask(spec=SMALL, probe="storage", seed=s)
                 for s in range(5)]
        a = _submission_order(list(reversed(tasks)))
        b = _submission_order(tasks)
        assert [t.task_id for t in a] == [t.task_id for t in b]


class TestTopologyCacheLine:
    def test_no_samples_yields_none(self):
        from repro.sweep.runner import SweepSummary
        assert SweepSummary(planned=0).topology_cache_line() is None

    def test_merged_worker_hit_rate_rendered(self):
        from repro.sweep.runner import SweepSummary
        summary = SweepSummary(planned=0)
        summary.metrics.counter("fabric.topology_cache.hits").inc(3)
        summary.metrics.counter("fabric.topology_cache.misses").inc(1)
        line = summary.topology_cache_line()
        assert line == "topology cache: 3/4 hits (75%) across workers"

    def test_pool_sweep_surfaces_cache_hits(self, tmp_path):
        plan = storage_plan(4)
        summary = run_sweep(plan, inline(tmp_path, workers=2))
        line = summary.topology_cache_line()
        # 4 same-fabric tasks over 2 workers: every worker's first build
        # misses, the rest hit; the line must render either way.
        if line is not None:
            assert "topology cache:" in line and "across workers" in line
