"""Artifact persistence: atomic writes, the trust gate, resume ledger."""

from __future__ import annotations

import json
import os

from repro.sweep.artifacts import (ARTIFACT_SCHEMA_VERSION, artifact_path,
                                   completed_ids, iter_artifacts,
                                   load_artifact, prune_artifacts,
                                   write_artifact)


def make_doc(task_id: str, status: str = "ok") -> dict:
    doc = {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "task": {"id": task_id, "probe": "storage", "seed": 1, "axes": {},
                 "spec": {"name": "tiny"}},
        "status": status,
        "timing": {"wall_time_s": 0.01, "attempts": 1},
        "metrics": {},
    }
    if status == "ok":
        doc["values"] = {"x": 1.0}
    else:
        doc["error"] = {"type": "RuntimeError", "message": "boom"}
    return doc


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        doc = make_doc("aaaa000011112222")
        path = write_artifact(str(tmp_path), doc)
        assert path == artifact_path(str(tmp_path), "aaaa000011112222")
        assert load_artifact(path) == doc

    def test_nested_out_dir_created_on_demand(self, tmp_path):
        out = str(tmp_path / "deep" / "nested" / "sweep")
        path = write_artifact(out, make_doc("bbbb000011112222"))
        assert os.path.exists(path)

    def test_write_leaves_no_temp_files(self, tmp_path):
        write_artifact(str(tmp_path), make_doc("cccc000011112222"))
        assert os.listdir(str(tmp_path)) == ["cccc000011112222.json"]


class TestTrustGate:
    def test_missing_file(self, tmp_path):
        assert load_artifact(str(tmp_path / "nope.json")) is None

    def test_truncated_json(self, tmp_path):
        path = tmp_path / "dddd000011112222.json"
        path.write_text('{"schema": 1, "task":')
        assert load_artifact(str(path)) is None

    def test_wrong_schema(self, tmp_path):
        doc = make_doc("eeee000011112222")
        doc["schema"] = 99
        path = tmp_path / "eeee000011112222.json"
        path.write_text(json.dumps(doc))
        assert load_artifact(str(path)) is None

    def test_non_dict_document(self, tmp_path):
        path = tmp_path / "ffff000011112222.json"
        path.write_text('["not", "an", "artifact"]')
        assert load_artifact(str(path)) is None

    def test_filename_id_mismatch(self, tmp_path):
        path = tmp_path / "1111000011112222.json"
        path.write_text(json.dumps(make_doc("2222000011112222")))
        assert load_artifact(str(path)) is None


class TestLedger:
    def test_completed_ids_counts_ok_only(self, tmp_path):
        out = str(tmp_path)
        write_artifact(out, make_doc("aaaa000011112222", status="ok"))
        write_artifact(out, make_doc("bbbb000011112222", status="error"))
        (tmp_path / "junk.json").write_text("{not json")
        (tmp_path / "notes.txt").write_text("ignored")
        assert completed_ids(out) == {"aaaa000011112222"}

    def test_missing_directory_is_empty(self, tmp_path):
        assert completed_ids(str(tmp_path / "never")) == set()
        assert list(iter_artifacts(str(tmp_path / "never"))) == []

    def test_iter_artifacts_sorted_by_id(self, tmp_path):
        out = str(tmp_path)
        for tid in ("cccc000011112222", "aaaa000011112222",
                    "bbbb000011112222"):
            write_artifact(out, make_doc(tid))
        ids = [doc["task"]["id"] for doc in iter_artifacts(out)]
        assert ids == sorted(ids)


class TestPrune:
    def test_removes_errors_and_stale_keeps_ok(self, tmp_path):
        out = str(tmp_path)
        write_artifact(out, make_doc("aaaa000011112222", status="ok"))
        write_artifact(out, make_doc("bbbb000011112222", status="error"))
        old = make_doc("cccc000011112222")
        old["schema"] = 0   # a previous ledger generation
        (tmp_path / "cccc000011112222.json").write_text(json.dumps(old))
        (tmp_path / "dddd000011112222.json").write_text(
            json.dumps(make_doc("eeee000011112222")))   # id/filename mismatch

        report = prune_artifacts(out)
        assert report.scanned == 4
        assert report.errors == 1
        assert report.stale == 2
        assert report.removed == 3
        assert report.kept == 1
        assert sorted(os.listdir(out)) == ["aaaa000011112222.json"]
        assert "removed: 3" in report.counts_line()

    def test_unreadable_files_are_counted_not_deleted(self, tmp_path):
        (tmp_path / "junk.json").write_text("{not json")
        (tmp_path / "list.json").write_text('["not", "ours"]')
        (tmp_path / "notes.txt").write_text("ignored entirely")
        report = prune_artifacts(str(tmp_path))
        assert report.scanned == 2
        assert report.unreadable == 2
        assert report.removed == 0
        assert sorted(os.listdir(str(tmp_path))) == [
            "junk.json", "list.json", "notes.txt"]

    def test_missing_directory_is_a_noop(self, tmp_path):
        report = prune_artifacts(str(tmp_path / "never"))
        assert report.scanned == report.removed == 0

    def test_pruned_errors_leave_resume_gap(self, tmp_path):
        """After --gc, a re-run retries exactly the pruned failures."""
        out = str(tmp_path)
        write_artifact(out, make_doc("aaaa000011112222", status="ok"))
        write_artifact(out, make_doc("bbbb000011112222", status="error"))
        prune_artifacts(out)
        assert completed_ids(out) == {"aaaa000011112222"}
        assert not os.path.exists(artifact_path(out, "bbbb000011112222"))
