"""Calibration-registry tests: the documented constants match the code.

If a model constant is retuned without updating its provenance entry (or
vice versa), these tests fail — keeping the calibration auditable.
"""

import pytest

from repro.calibration import REGISTRY, constants_by_module, lookup


def live_value(name: str) -> float:
    """Fetch the live value each registry entry documents."""
    if name == "nt_efficiency[NPS4]":
        from repro.node.cpu import NpsMode
        from repro.node.dram import StreamCalibration
        return StreamCalibration().nt_efficiency[NpsMode.NPS4]
    if name == "nt_efficiency[NPS1]":
        from repro.node.cpu import NpsMode
        from repro.node.dram import StreamCalibration
        return StreamCalibration().nt_efficiency[NpsMode.NPS1]
    if name == "temporal_raw_fraction":
        from repro.node.dram import StreamCalibration
        return StreamCalibration().temporal_raw_fraction
    if name == "gpu_stream_efficiency[DOT]":
        from repro.node.hbm import GpuStreamCalibration
        from repro.node.stream import StreamKernel
        return GpuStreamCalibration().efficiency[StreamKernel.DOT]
    if name == "gemm_eff_inf[FP64]":
        from repro.node.gemm import GemmCalibration
        from repro.node.gpu import Precision
        return GemmCalibration().eff_inf[Precision.FP64]
    if name == "cu_kernel_efficiency[4-link]":
        from repro.node.transfers import CU_KERNEL_EFFICIENCY_BY_WIDTH
        return CU_KERNEL_EFFICIENCY_BY_WIDTH[4]
    if name == "single_core_xgmi2_efficiency":
        from repro.node.transfers import SINGLE_CORE_XGMI2_EFFICIENCY
        return SINGLE_CORE_XGMI2_EFFICIENCY
    if name == "hpcg_bandwidth_efficiency":
        from repro.node.roofline import HPCG_BANDWIDTH_EFFICIENCY
        return HPCG_BANDWIDTH_EFFICIENCY
    if name == "stream_efficiency":
        from repro.fabric.network import STREAM_EFFICIENCY
        return STREAM_EFFICIENCY
    if name == "host_overhead_s":
        from repro.fabric.latency import LatencyModel
        return LatencyModel().host_overhead_s
    if name == "allreduce_stage_sw_s":
        from repro.fabric.collectives import ALLREDUCE_STAGE_SW_S
        return ALLREDUCE_STAGE_SW_S
    if name == "victim_queue_protection":
        from repro.fabric.congestion import CongestionControl
        return CongestionControl().victim_queue_protection
    if name == "nvme_sustained_read_fraction":
        from repro.storage.nvme import NvmeDrive
        return NvmeDrive().sustained_read_fraction
    if name == "flash_read_measured_fraction":
        from repro.storage.ssu import ScalableStorageUnit
        return ScalableStorageUnit().flash_read_measured_fraction
    if name == "disk_write_measured_fraction":
        from repro.storage.ssu import ScalableStorageUnit
        return ScalableStorageUnit().disk_write_measured_fraction
    if name == "hbm_stack_fit":
        from repro.resilience.fit import frontier_fit_inventory
        inv = frontier_fit_inventory()
        return next(e.fit for e in inv.entries if e.name.startswith("HBM"))
    if name == "power_supply_fit":
        from repro.resilience.fit import frontier_fit_inventory
        inv = frontier_fit_inventory()
        return next(e.fit for e in inv.entries if e.name.startswith("Power"))
    if name == "comet_per_device_kernel":
        from repro.apps.comet import CoMet
        return CoMet().projection().factors["per_device_kernel"]
    if name == "cholla_algorithmic":
        from repro.apps.cholla import Cholla
        return Cholla().projection().factors["algorithmic"]
    if name == "exaalt_snap_rewrite":
        from repro.apps.exaalt import Exaalt
        return Exaalt().projection().factors["snap_kernel_rewrite"]
    if name == "athenapk_summit_staging":
        from repro.apps.scaling import WeakScalingModel
        from repro.core.baselines import SUMMIT
        return WeakScalingModel.athenapk(machine=SUMMIT).staging_factor
    raise KeyError(name)


class TestRegistryIntegrity:
    @pytest.mark.parametrize("entry", REGISTRY, ids=lambda e: e.name)
    def test_registry_matches_live_code(self, entry):
        assert entry.matches(live_value(entry.name)), (
            f"{entry.name}: registry says {entry.value}, code says "
            f"{live_value(entry.name)} — update the provenance entry")

    def test_every_entry_has_a_paper_anchor(self):
        for entry in REGISTRY:
            assert len(entry.paper_anchor) > 20
            assert "§" in entry.paper_anchor or "Table" in entry.paper_anchor \
                or "Figure" in entry.paper_anchor or "list" in entry.paper_anchor

    def test_lookup(self):
        assert lookup("stream_efficiency").value == 0.70
        with pytest.raises(KeyError):
            lookup("nonexistent")

    def test_constants_by_module(self):
        assert len(constants_by_module("repro.node.dram")) == 3
        assert constants_by_module("repro.nothing") == []

    def test_unique_names(self):
        names = [e.name for e in REGISTRY]
        assert len(names) == len(set(names))
