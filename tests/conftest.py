"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fabric.dragonfly import DragonflyConfig, build_dragonfly
from repro.fabric.network import SlingshotNetwork
from repro.node.cpu import TrentoCpu
from repro.node.node import BardPeakNode


@pytest.fixture(scope="session")
def frontier_fabric_config() -> DragonflyConfig:
    """The full-scale dragonfly parameters (not materialised)."""
    return DragonflyConfig()


@pytest.fixture(scope="session")
def small_fabric_config() -> DragonflyConfig:
    """A reduced-scale dragonfly preserving the taper, cheap to build."""
    return DragonflyConfig().scaled(groups=8, switches_per_group=4,
                                    endpoints_per_switch=4)


@pytest.fixture(scope="session")
def small_topology(small_fabric_config):
    return build_dragonfly(small_fabric_config)


@pytest.fixture(scope="session")
def small_network(small_fabric_config) -> SlingshotNetwork:
    return SlingshotNetwork(small_fabric_config)


@pytest.fixture()
def node() -> BardPeakNode:
    return BardPeakNode()


@pytest.fixture()
def cpu() -> TrentoCpu:
    return TrentoCpu()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
