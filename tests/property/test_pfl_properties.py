"""Property-based tests for Progressive File Layout placement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.pfl import ORION_PFL, ProgressiveFileLayout, Tier

sizes = st.integers(min_value=0, max_value=10 ** 13)


class TestPartition:
    @given(sizes)
    @settings(max_examples=200)
    def test_extents_partition_the_file(self, size):
        extents = ORION_PFL.place(size)
        if size == 0:
            assert extents == []
            return
        assert extents[0].start == 0
        assert extents[-1].end == size
        for prev, cur in zip(extents, extents[1:]):
            assert prev.end == cur.start
        assert all(e.length > 0 for e in extents)

    @given(sizes)
    @settings(max_examples=200)
    def test_bytes_per_tier_sums_to_size(self, size):
        per_tier = ORION_PFL.bytes_per_tier(size)
        assert sum(per_tier.values()) == size
        assert all(v >= 0 for v in per_tier.values())

    @given(sizes)
    @settings(max_examples=200)
    def test_tier_order_is_monotone(self, size):
        """Tiers appear in the configured order, each at most once."""
        order = [Tier.METADATA, Tier.PERFORMANCE, Tier.CAPACITY]
        tiers = [e.tier for e in ORION_PFL.place(size)]
        assert tiers == [t for t in order if t in tiers]

    @given(sizes)
    @settings(max_examples=200)
    def test_monotone_growth(self, size):
        """Adding bytes never shrinks any tier's share."""
        a = ORION_PFL.bytes_per_tier(size)
        b = ORION_PFL.bytes_per_tier(size + 4096)
        for tier in Tier:
            assert b[tier] >= a[tier]


@st.composite
def layouts(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    bounds = draw(st.lists(st.integers(min_value=1, max_value=10 ** 9),
                           min_size=n, max_size=n, unique=True))
    bounds.sort()
    tiers = draw(st.lists(st.sampled_from(list(Tier)), min_size=n,
                          max_size=n))
    return ProgressiveFileLayout(components=tuple(zip(bounds, tiers)))


class TestArbitraryLayouts:
    @given(layouts(), sizes)
    @settings(max_examples=150)
    def test_partition_holds_for_any_layout(self, layout, size):
        extents = layout.place(size)
        assert sum(e.length for e in extents) == size
        for prev, cur in zip(extents, extents[1:]):
            assert prev.end == cur.start

    @given(layouts())
    @settings(max_examples=100)
    def test_served_at_open_boundary(self, layout):
        first_bound, first_tier = layout.components[0]
        if first_tier is Tier.METADATA:
            assert layout.served_at_open(first_bound)
            assert not layout.served_at_open(first_bound + 1)
        else:
            assert not layout.served_at_open(1)
