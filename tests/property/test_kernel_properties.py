"""Property-based tests on the computational kernels' invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.exaalt import ParSpliceEngine
from repro.apps.kernels.ccc import ccc_2way, make_genotype_matrix
from repro.apps.kernels.hydro import Euler1d


class TestHydroConservation:
    @given(st.integers(min_value=8, max_value=64),
           st.floats(min_value=0.01, max_value=0.3),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_periodic_conservation_for_any_smooth_state(self, nx, amp, steps):
        sim = Euler1d(nx=nx, boundary="periodic")
        x = (np.arange(nx) + 0.5) * sim.dx
        sim.set_primitive(1.0 + amp * np.sin(2 * np.pi * x),
                          amp * np.cos(2 * np.pi * x),
                          np.full(nx, 1.0))
        before = sim.conserved_totals()
        for _ in range(steps):
            sim.step()
        after = sim.conserved_totals()
        assert np.allclose(before, after, rtol=1e-11, atol=1e-11)


class TestCccNormalisation:
    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_cell_frequencies_sum_to_one(self, loci, samples, seed):
        g = make_genotype_matrix(loci, samples, rng=seed)
        t = ccc_2way(g)
        assert np.allclose(t.sum(axis=(2, 3)), 1.0)
        assert np.all(t >= 0)

    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=1, max_value=32),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, loci, samples, seed):
        g = make_genotype_matrix(loci, samples, rng=seed)
        t = ccc_2way(g)
        assert np.allclose(t, np.transpose(t, (1, 0, 3, 2)))


class TestParSpliceInvariant:
    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=2, max_value=8),
           st.floats(min_value=0.0, max_value=0.95),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_trajectory_always_contiguous(self, replicas, states, self_loop,
                                          seed):
        engine = ParSpliceEngine(n_states=states, n_replicas=replicas,
                                 self_loop=self_loop, rng=seed)
        engine.run(rounds=15)
        assert engine.is_contiguous()
        assert engine.speedup() <= replicas + 1e-9
