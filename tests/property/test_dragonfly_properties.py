"""Property-based structural tests for dragonfly configurations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.dragonfly import DragonflyConfig, build_dragonfly
from repro.fabric.routing import Router, RoutingPolicy
from repro.fabric.topology import LinkKind


@st.composite
def configs(draw):
    groups = draw(st.integers(min_value=2, max_value=8))
    switches = draw(st.integers(min_value=2, max_value=5))
    endpoints = draw(st.integers(min_value=1, max_value=4))
    links = draw(st.integers(min_value=1, max_value=3))
    return DragonflyConfig(
        groups=groups, switches_per_group=switches,
        endpoints_per_switch=endpoints, global_links_per_pair=links,
        l1_ports=max(32, switches - 1),
        l2_ports=max(16, -(-links * (groups - 1) // switches)),
    )


class TestStructure:
    @given(configs())
    @settings(max_examples=25, deadline=None)
    def test_derived_quantities_consistent(self, cfg):
        assert cfg.total_endpoints == (cfg.groups * cfg.switches_per_group
                                       * cfg.endpoints_per_switch)
        assert cfg.taper == pytest.approx(
            cfg.global_bandwidth_per_group / cfg.injection_bandwidth_per_group)
        # sum over groups double-counts each pair's links
        assert cfg.total_global_bandwidth == pytest.approx(
            cfg.groups * cfg.global_bandwidth_per_group / 2)

    @given(configs())
    @settings(max_examples=12, deadline=None)
    def test_built_topology_invariants(self, cfg):
        topo = build_dragonfly(cfg)
        assert topo.n_switches == cfg.total_switches
        assert topo.n_endpoints == cfg.total_endpoints
        # L2 capacity between every group pair equals the bundle capacity
        expected = cfg.global_links_per_pair * cfg.link_rate
        total_l2 = sum(link.capacity for link in topo.links
                       if link.kind is LinkKind.L2)
        n_pairs = cfg.groups * (cfg.groups - 1) // 2
        assert total_l2 == pytest.approx(2 * n_pairs * expected)  # both dirs

    @given(configs())
    @settings(max_examples=8, deadline=None)
    def test_minimal_routing_reaches_everything_in_3_hops(self, cfg):
        topo = build_dragonfly(cfg)
        router = Router(topo, cfg, RoutingPolicy.MINIMAL)
        n = cfg.total_endpoints
        stride = max(1, n // 7)
        for dst in range(1, n, stride):
            path = router.path(0, dst, register=False)
            assert router.switch_hops(path) <= 3
            assert router.global_hops(path) <= 1


class TestScaledFactory:
    @given(st.integers(min_value=3, max_value=10),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_scaled_taper_error_bounded_by_link_granularity(self, groups,
                                                            switches, eps):
        # Bundle widths are integers, so at tiny scale the taper can only be
        # matched up to half a link per group pair.
        full = DragonflyConfig()
        small = full.scaled(groups, switches, eps)
        injection = switches * eps * full.link_rate
        granularity = 0.5 * (groups - 1) * full.link_rate / injection
        if small.global_links_per_pair == 1:
            # the 1-link floor: connectivity wins over taper fidelity
            assert small.taper >= full.taper - granularity - 1e-9
        else:
            assert abs(small.taper - full.taper) <= granularity + 1e-9
        assert small.groups == groups
