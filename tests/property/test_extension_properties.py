"""Property-based tests for the extension modules (AMR, CG, dRAID, units)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kernels.amr import AmrHierarchy
from repro.apps.kernels.cg import pcg_solve, poisson_operator
from repro.storage.draid import DraidGeometry
from repro.units import bytes_from, to_unit


class TestAmrProperties:
    @given(st.sampled_from([32, 64, 128]),
           st.floats(min_value=0.02, max_value=0.5),
           st.integers(min_value=5, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_composite_mass_conserved_for_any_threshold(self, n, threshold,
                                                        steps):
        h = AmrHierarchy(n_coarse=n, refine_threshold=threshold)
        m0 = h.total_mass()
        for i in range(steps):
            h.step()
            if i % 4 == 3:
                h.regrid()
        assert h.total_mass() == pytest.approx(m0, abs=1e-11)

    @given(st.floats(min_value=0.02, max_value=0.2))
    @settings(max_examples=15, deadline=None)
    def test_refined_fraction_monotone_in_threshold(self, threshold):
        tight = AmrHierarchy(n_coarse=64, refine_threshold=threshold)
        loose = AmrHierarchy(n_coarse=64, refine_threshold=threshold * 3)
        assert tight.refined_fraction >= loose.refined_fraction


class TestCgProperties:
    @given(st.integers(min_value=4, max_value=9),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_pcg_solves_any_rhs(self, n, seed):
        a = poisson_operator(n, dims=2)
        rng = np.random.default_rng(seed)
        x_true = rng.standard_normal(a.shape[0])
        b = a @ x_true
        x, result = pcg_solve(a, b, tol=1e-10)
        assert result.converged
        assert np.linalg.norm(x - x_true) <= 1e-6 * np.linalg.norm(x_true)

    @given(st.integers(min_value=4, max_value=8),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_preconditioning_never_hurts_iterations_much(self, n, seed):
        a = poisson_operator(n, dims=2)
        rng = np.random.default_rng(seed)
        b = a @ rng.standard_normal(a.shape[0])
        _, plain = pcg_solve(a, b, preconditioned=False)
        _, pre = pcg_solve(a, b, preconditioned=True)
        assert pre.iterations <= plain.iterations


class TestDraidProperties:
    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=4))
    @settings(max_examples=60)
    def test_efficiency_in_unit_interval(self, data, parity, spares):
        children = data + parity + spares
        g = DraidGeometry(data=data, parity=parity, children=children,
                          spares=spares)
        assert 0.0 < g.capacity_efficiency < 1.0 or (
            spares == 0 and g.capacity_efficiency
            == pytest.approx(data / (data + parity)))
        assert g.capacity_efficiency <= data / (data + parity)

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=40)
    def test_usable_never_exceeds_raw(self, data, parity):
        g = DraidGeometry(data=data, parity=parity)
        raw = 18e12 * g.effective_children * 4
        assert g.usable_bytes(18e12, g.effective_children * 4) < raw

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=40)
    def test_degraded_overhead_monotone(self, data, parity):
        g = DraidGeometry(data=data, parity=parity)
        overheads = [g.degraded_read_overhead(f) for f in range(parity + 1)]
        assert overheads == sorted(overheads)


class TestUnitsProperties:
    @given(st.floats(min_value=1e-3, max_value=1e6),
           st.sampled_from(["KiB", "MiB", "GiB", "TiB", "PiB",
                            "KB", "MB", "GB", "TB", "PB"]))
    @settings(max_examples=100)
    def test_roundtrip(self, value, unit):
        assert to_unit(bytes_from(value, unit), unit) == pytest.approx(
            value, rel=1e-12)

    @given(st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=50)
    def test_binary_units_always_larger(self, value):
        for si, iec in (("KB", "KiB"), ("MB", "MiB"), ("GB", "GiB"),
                        ("TB", "TiB"), ("PB", "PiB")):
            assert bytes_from(value, iec) > bytes_from(value, si)
