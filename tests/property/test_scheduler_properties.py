"""Property-based tests for scheduling and placement invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler.placement import PlacementPolicy, place_job
from repro.scheduler.slurm import JobRequest, JobState, SlurmScheduler
from repro.scheduler.vni import VniAllocator


class TestPlacementProperties:
    @given(st.integers(min_value=1, max_value=200),
           st.sampled_from(list(PlacementPolicy)),
           st.sets(st.integers(min_value=0, max_value=511), min_size=200,
                   max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_placement_returns_exactly_free_nodes(self, n, policy, free):
        nodes = place_job(n, free, policy, nodes_per_group=64)
        assert len(nodes) == n
        assert len(set(nodes)) == n
        assert set(nodes) <= free
        assert nodes == sorted(nodes)


class TestSchedulerProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=64),
                              st.floats(min_value=1.0, max_value=100.0)),
                    min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_no_double_allocation_and_all_jobs_finish(self, jobs):
        s = SlurmScheduler(n_nodes=128)
        ids = [s.submit(JobRequest(n, d)) for n, d in jobs]
        # invariant at every instant: running jobs occupy disjoint nodes
        def check_disjoint():
            occupied: set[int] = set()
            for jid in ids:
                job = s.job(jid)
                if job.state is JobState.RUNNING:
                    assert not occupied & set(job.nodes)
                    occupied |= set(job.nodes)
        check_disjoint()
        for _ in range(1000):
            if s.step() is None:
                break
            check_disjoint()
        assert all(s.job(j).state is JobState.COMPLETED for j in ids)
        assert len(s.free_nodes) == 128

    @given(st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=1,
                    max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_time_is_monotone(self, durations):
        s = SlurmScheduler(n_nodes=8)
        for d in durations:
            s.submit(JobRequest(8, d))   # serialise: each takes the machine
        last = 0.0
        while True:
            t = s.step()
            if t is None:
                break
            assert t >= last
            last = t


class TestVniProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_live_vnis_always_unique(self, ops):
        alloc = VniAllocator(low=1, high=64)
        live: list[int] = []
        for allocate in ops:
            if allocate and len(live) < 64:
                live.append(alloc.allocate("x"))
            elif live:
                alloc.release(live.pop())
            assert len(set(live)) == len(live)
            assert alloc.live_count == len(live)
