"""Property-based tests for the max-min fair allocator.

These are the library's central invariants: every fabric bandwidth number
in the reproduction flows through :func:`maxmin_allocate`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.maxmin import maxmin_allocate


@st.composite
def instances(draw):
    n_links = draw(st.integers(min_value=1, max_value=12))
    n_flows = draw(st.integers(min_value=1, max_value=16))
    caps = draw(st.lists(st.floats(min_value=0.5, max_value=100.0),
                         min_size=n_links, max_size=n_links))
    paths = []
    for _ in range(n_flows):
        length = draw(st.integers(min_value=1, max_value=min(4, n_links)))
        path = draw(st.lists(st.integers(min_value=0, max_value=n_links - 1),
                             min_size=length, max_size=length, unique=True))
        paths.append(path)
    return caps, paths


def _usage(caps, paths, rates):
    usage = np.zeros(len(caps))
    for rate, path in zip(rates, paths):
        for link in path:
            usage[link] += rate
    return usage


class TestAllocationProperties:
    @given(instances())
    @settings(max_examples=80, deadline=None)
    def test_feasible(self, instance):
        caps, paths = instance
        result = maxmin_allocate(caps, paths)
        usage = _usage(caps, paths, result.rates)
        assert np.all(usage <= np.asarray(caps) * (1 + 1e-9))

    @given(instances())
    @settings(max_examples=80, deadline=None)
    def test_rates_positive(self, instance):
        caps, paths = instance
        result = maxmin_allocate(caps, paths)
        assert np.all(result.rates > 0)

    @given(instances())
    @settings(max_examples=80, deadline=None)
    def test_each_flow_bottlenecked(self, instance):
        """Pareto optimality: every flow crosses a saturated link."""
        caps, paths = instance
        result = maxmin_allocate(caps, paths)
        usage = _usage(caps, paths, result.rates)
        for f, path in enumerate(paths):
            bn = result.bottleneck_link[f]
            assert bn in path
            assert usage[bn] == pytest.approx(caps[bn], rel=1e-6)

    @given(instances())
    @settings(max_examples=80, deadline=None)
    def test_lexicographic_fairness(self, instance):
        """A flow's rate equals the max-min share at its bottleneck: no
        flow on the bottleneck link has a smaller rate it was robbed of."""
        caps, paths = instance
        result = maxmin_allocate(caps, paths)
        for f, path in enumerate(paths):
            bn = result.bottleneck_link[f]
            sharers = [g for g, p in enumerate(paths) if bn in p]
            # our flow has the (weakly) largest rate among equal bottleneck
            # sharers only if others were limited elsewhere at lower rates
            for g in sharers:
                if result.rates[g] < result.rates[f] * (1 - 1e-6):
                    g_bn = result.bottleneck_link[g]
                    assert g_bn != bn or result.rates[g] == pytest.approx(
                        result.rates[f], rel=1e-6)

    @given(instances(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, instance, scale):
        """Scaling all capacities scales all rates by the same factor."""
        caps, paths = instance
        base = maxmin_allocate(caps, paths)
        scaled = maxmin_allocate([c * scale for c in caps], paths)
        assert np.allclose(scaled.rates, base.rates * scale, rtol=1e-6)

    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_demand_caps_respected(self, instance):
        caps, paths = instance
        demands = [1.0] * len(paths)
        result = maxmin_allocate(caps, paths, demands=demands)
        assert np.all(result.rates <= 1.0 + 1e-9)
