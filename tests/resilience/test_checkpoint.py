"""Young/Daly checkpoint optimisation tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.resilience.checkpoint import (CheckpointPlan, checkpoint_efficiency,
                                         daly_optimal_interval,
                                         young_optimal_interval)

MTTI = 5.0 * 3600.0   # the modeled Frontier MTTI, seconds
DELTA = 20.0          # burst-buffer checkpoint, seconds


class TestFormulas:
    def test_young_formula(self):
        assert young_optimal_interval(DELTA, MTTI) == pytest.approx(
            np.sqrt(2 * DELTA * MTTI))

    def test_daly_close_to_young_when_delta_small(self):
        y = young_optimal_interval(DELTA, MTTI)
        d = daly_optimal_interval(DELTA, MTTI)
        assert d == pytest.approx(y, rel=0.05)

    def test_daly_clamps_when_checkpoint_dominates(self):
        assert daly_optimal_interval(3 * MTTI, MTTI) == MTTI

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            young_optimal_interval(0.0, MTTI)
        with pytest.raises(ConfigurationError):
            daly_optimal_interval(DELTA, 0.0)


class TestEfficiency:
    def test_optimum_beats_neighbours(self):
        plan = CheckpointPlan(checkpoint_cost_s=DELTA, mtti_s=MTTI)
        opt = plan.daly_interval_s
        for factor in (0.25, 0.5, 2.0, 4.0):
            assert plan.optimum_beats(opt * factor)

    def test_efficiency_is_high_with_burst_buffer(self):
        # Fast node-local checkpoints keep useful work above 90%.
        plan = CheckpointPlan(checkpoint_cost_s=DELTA, mtti_s=MTTI)
        assert plan.efficiency_at_optimum > 0.90

    def test_slow_pfs_checkpoints_cost_more(self):
        fast = CheckpointPlan(checkpoint_cost_s=20.0, mtti_s=MTTI)
        slow = CheckpointPlan(checkpoint_cost_s=180.0, mtti_s=MTTI)
        assert slow.efficiency_at_optimum < fast.efficiency_at_optimum

    def test_efficiency_bounds(self):
        eff = checkpoint_efficiency(600.0, DELTA, MTTI)
        assert 0.0 <= eff <= 1.0

    def test_too_frequent_checkpointing_wastes_time(self):
        frequent = checkpoint_efficiency(DELTA, DELTA, MTTI)
        sensible = checkpoint_efficiency(20 * DELTA, DELTA, MTTI)
        assert frequent < sensible

    def test_restart_cost_lowers_efficiency(self):
        base = checkpoint_efficiency(600.0, DELTA, MTTI, restart_s=0.0)
        with_restart = checkpoint_efficiency(600.0, DELTA, MTTI,
                                             restart_s=1200.0)
        assert with_restart < base

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            checkpoint_efficiency(0.0, DELTA, MTTI)
        with pytest.raises(ConfigurationError):
            checkpoint_efficiency(10.0, DELTA, MTTI, restart_s=-1.0)


class TestStorageIntegration:
    def test_plan_from_storage_models(self):
        """End-to-end: checkpoint cost from the burst buffer, MTTI from the
        FIT inventory, plan efficiency stays above 90%."""
        from repro.resilience.mtti import MttiModel
        from repro.storage.iosim import CheckpointScenario
        scenario = CheckpointScenario()
        mtti_s = MttiModel.frontier().system_mtti_hours * 3600.0
        plan = CheckpointPlan(checkpoint_cost_s=scenario.burst_time,
                              mtti_s=mtti_s)
        assert plan.efficiency_at_optimum > 0.90
        # the optimal interval is tens of minutes, not hours
        assert 5 * 60 < plan.daly_interval_s < 3600
