"""FIT inventory tests — §5.4's failure attribution."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.fit import FitEntry, FitInventory, frontier_fit_inventory


@pytest.fixture(scope="module")
def inventory() -> FitInventory:
    return frontier_fit_inventory()


class TestAttribution:
    def test_memory_and_power_supplies_lead(self, inventory):
        # "They correctly identified memory and power supplies as leading
        # contributors as we have seen on Frontier."
        leading = inventory.leading_contributors(2)
        assert "HBM2e stack (uncorrectable)" in leading
        assert "Power supply / rectifier" in leading

    def test_leading_two_account_for_most_failures(self, inventory):
        contrib = inventory.contributions()
        top2 = sum(sorted(contrib.values(), reverse=True)[:2])
        assert top2 > 0.7

    def test_contributions_sum_to_one(self, inventory):
        assert sum(inventory.contributions().values()) == pytest.approx(1.0)


class TestMttiMagnitude:
    def test_system_mtti_in_hours_range(self, inventory):
        # "not much better than their projected four-hour target"
        assert 2.0 <= inventory.system_mtti_hours <= 8.0

    def test_10x_improvement_reaches_terascale_band(self, inventory):
        # Maturing FIT rates 10x would beat the 8-12 h terascale goal.
        improved = inventory.scaled(0.1)
        assert improved.system_mtti_hours > 12.0

    def test_scaling_factor_validation(self, inventory):
        with pytest.raises(ConfigurationError):
            inventory.scaled(0.0)


class TestEntries:
    def test_failures_per_hour(self):
        e = FitEntry("x", count=1_000_000, fit=100.0)
        assert e.failures_per_hour == pytest.approx(0.1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FitEntry("x", count=-1, fit=10.0)
        with pytest.raises(ConfigurationError):
            FitEntry("x", count=1, fit=-10.0)

    def test_empty_inventory_is_immortal(self):
        inv = FitInventory()
        assert inv.system_mtti_hours == float("inf")
        assert inv.contributions() == {}

    def test_hbm_stack_count_matches_architecture(self, inventory):
        hbm = next(e for e in inventory.entries if e.name.startswith("HBM"))
        assert hbm.count == 9472 * 32   # 8 GCDs x 4 stacks per node


class TestScaled:
    """The chaos engine's ``failure_scale`` knob rides on ``scaled``."""

    def test_mtti_monotone_in_scale_factor(self, inventory):
        factors = (0.1, 0.5, 1.0, 2.0, 10.0, 600.0)
        mttis = [inventory.scaled(f).system_mtti_hours for f in factors]
        assert mttis == sorted(mttis, reverse=True)

    def test_rates_scale_linearly(self, inventory):
        doubled = inventory.scaled(2.0)
        for base, scaled in zip(inventory.entries, doubled.entries):
            assert scaled.failures_per_hour == pytest.approx(
                2.0 * base.failures_per_hour)
        assert doubled.system_mtti_hours == pytest.approx(
            inventory.system_mtti_hours / 2.0)

    def test_identity_scale_preserves_everything(self, inventory):
        same = inventory.scaled(1.0)
        assert [e.name for e in same.entries] == [
            e.name for e in inventory.entries]
        assert same.system_mtti_hours == inventory.system_mtti_hours

    def test_contributions_invariant_under_scaling(self, inventory):
        scaled = inventory.scaled(37.0)
        for name, frac in inventory.contributions().items():
            assert scaled.contributions()[name] == pytest.approx(frac)
