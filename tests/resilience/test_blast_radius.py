"""Blast-radius tests — correlated failures and placement."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.blast_radius import FailureDomainModel
from repro.resilience.mtti import MttiModel


@pytest.fixture(scope="module")
def model() -> FailureDomainModel:
    return FailureDomainModel()


class TestRadii:
    def test_every_inventory_entry_has_a_radius(self, model):
        names = {b.component for b in model.blast_radii()}
        assert names == {e.name for e in model.inventory.entries}

    def test_draid_absorbs_orion_drives(self, model):
        drive = next(b for b in model.blast_radii()
                     if b.component.startswith("Orion"))
        assert drive.nodes_lost == 0

    def test_psu_takes_out_a_node_pair(self, model):
        psu = next(b for b in model.blast_radii()
                   if b.component.startswith("Power"))
        assert psu.nodes_lost == 2

    def test_unknown_component_rejected(self):
        from repro.resilience.fit import FitEntry, FitInventory
        inv = FitInventory([FitEntry("mystery widget", 10, 100.0)])
        with pytest.raises(ConfigurationError):
            FailureDomainModel(inv)


class TestJobImpact:
    def test_blast_radius_worsens_job_mtti(self, model):
        """PSUs with radius 2 interrupt a job almost twice as often as the
        naive per-node attribution for small jobs."""
        naive = MttiModel.frontier()
        job = 1024
        assert model.job_mtti_hours(job) < naive.job_mtti_hours(job) * 1.05

    def test_interrupt_rate_monotone_in_job_size(self, model):
        rates = [model.job_interrupt_rate(n) for n in (128, 1024, 4096, 9472)]
        assert rates == sorted(rates)

    def test_full_machine_rate_counts_every_damaging_failure(self, model):
        full = model.job_interrupt_rate(9472)
        damaging = sum(b.failures_per_hour for b in model.blast_radii()
                       if b.nodes_lost > 0)
        assert full == pytest.approx(damaging, rel=1e-9)

    def test_expected_node_hours_lost(self, model):
        lost = model.expected_nodes_lost_per_hour()
        # a fraction of a node per hour at system MTTI ~5 h and small radii
        assert 0.1 < lost < 2.0

    def test_psu_dominates_node_hours(self, model):
        # FIT-heavy *and* radius 2: the §5.4 mitigation target.
        assert model.dominant_blast_source() == "Power supply / rectifier"

    def test_job_size_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.job_interrupt_rate(0)


class TestWhatIf:
    def test_psu_mitigation_cuts_losses(self, model):
        """'HPE has a plan to mitigate this source of upsets' — model it
        as halving the blast radius to a single node."""
        mitigated = model.what_if_radius("Power supply / rectifier", 1)
        assert (mitigated.expected_nodes_lost_per_hour()
                < model.expected_nodes_lost_per_hour())
        assert (mitigated.job_interrupt_rate(1024)
                < model.job_interrupt_rate(1024))

    def test_what_if_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.what_if_radius("nonexistent", 1)
        with pytest.raises(ConfigurationError):
            model.what_if_radius("Cassini NIC", -1)


class TestAgreementWithMttiModel:
    """The chaos cross-validation gate's analytic backbone: with every
    radius forced to 1 (and none absorbed), the failure-domain model
    collapses *exactly* onto ``MttiModel``'s proportional attribution."""

    def test_all_radius_one_equals_mtti_model(self):
        from repro.resilience.blast_radius import DEFAULT_RADII
        naive = MttiModel.frontier()
        uniform = FailureDomainModel(
            radii={name: 1 for name in DEFAULT_RADII})
        for job in (64, 1024, 9472):
            assert uniform.job_interrupt_rate(job) == pytest.approx(
                1.0 / naive.job_mtti_hours(job), rel=1e-12)

    def test_frontier_radii_bracket_the_naive_model(self, model):
        """Real radii drop Orion (radius 0) but amplify PSU/switch hits;
        the FDM rate stays within the physically meaningful envelope of
        the naive rate for small jobs."""
        naive = MttiModel.frontier()
        for job in (64, 1024):
            fdm = model.job_interrupt_rate(job)
            upper = 4.0 / naive.job_mtti_hours(job)   # max radius = 4
            assert 0.0 < fdm < upper

    def test_scaled_inventory_scales_interrupt_rate(self, model):
        hot = FailureDomainModel(model.inventory.scaled(10.0))
        assert hot.job_interrupt_rate(1024) == pytest.approx(
            10.0 * model.job_interrupt_rate(1024))
