"""MTTI model tests (analytic vs Monte Carlo, §5.4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.resilience.mtti import (MttiModel, monte_carlo_mtti,
                                   REPORT_IMPROVED_MTTI_HOURS)


@pytest.fixture(scope="module")
def model() -> MttiModel:
    return MttiModel.frontier()


class TestAnalytic:
    def test_near_four_hour_projection(self, model):
        card = model.report_card()
        assert card["near_four_hour_target"]
        assert card["report_10x_projection_hours"] == REPORT_IMPROVED_MTTI_HOURS

    def test_not_yet_at_terascale_goal(self, model):
        # "hopefully reach ... failures on the order of 8-12 hours"
        assert not model.report_card()["reaches_terascale_goal"]

    def test_smaller_jobs_interrupt_less(self, model):
        small = model.job_mtti_hours(128)
        large = model.job_mtti_hours(8192)
        assert small > large

    def test_full_machine_job_sees_system_mtti(self, model):
        assert model.job_mtti_hours(9472) == pytest.approx(
            model.system_mtti_hours)

    def test_interrupt_probability_grows_with_time(self, model):
        probs = [model.job_interrupt_probability(4096, h)
                 for h in (1, 6, 24)]
        assert probs == sorted(probs)
        assert 0.0 < probs[0] < probs[-1] < 1.0

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.job_mtti_hours(0)
        with pytest.raises(ConfigurationError):
            model.job_mtti_hours(100_000)
        with pytest.raises(ConfigurationError):
            model.job_interrupt_probability(64, -1.0)


class TestMonteCarlo:
    def test_converges_to_analytic(self, model):
        mean, samples = monte_carlo_mtti(trials=400, rng=3)
        assert mean == pytest.approx(model.system_mtti_hours, rel=0.1)
        assert np.isfinite(samples).all()

    def test_deterministic_given_seed(self):
        a, _ = monte_carlo_mtti(trials=50, rng=9)
        b, _ = monte_carlo_mtti(trials=50, rng=9)
        assert a == b

    def test_empty_inventory_immortal(self):
        from repro.resilience.fit import FitInventory
        mean, samples = monte_carlo_mtti(FitInventory(), trials=10)
        assert mean == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            monte_carlo_mtti(trials=0)
        with pytest.raises(ConfigurationError):
            monte_carlo_mtti(horizon_hours=0.0)
