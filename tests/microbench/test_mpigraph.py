"""mpiGraph simulation tests — Figure 6's shape claims."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.microbench.mpigraph import (MpiGraphHistogram,
                                       frontier_mpigraph_histogram,
                                       simulate_mpigraph,
                                       summit_mpigraph_histogram)


@pytest.fixture(scope="module")
def frontier():
    return frontier_mpigraph_histogram(samples_per_offset=2, rng=1)


@pytest.fixture(scope="module")
def summit():
    return summit_mpigraph_histogram(rng=1)


class TestFrontierShape:
    def test_range_3_to_17_5_gbs(self, frontier):
        # "ranging from 3 GB/s to 17.5 GB/s" (jitter widens slightly)
        assert frontier.min_gbs == pytest.approx(3.0, abs=0.8)
        assert frontier.quantile(0.999) / 1e9 == pytest.approx(17.5, rel=0.2)

    def test_intra_group_spike_is_1_4_pct(self, frontier):
        # "Each Frontier compute dragonfly group ... ~1.4% of the total ...
        # is the very small grouping around 17.5 GB/s"
        assert frontier.mass_above(15.0) == pytest.approx(0.014, abs=0.004)

    def test_bulk_sits_at_the_global_floor(self, frontier):
        # Most pairs divide the 270.1 TB/s pool with non-minimal halving.
        median = frontier.quantile(0.5) / 1e9
        assert median == pytest.approx(3.59, rel=0.15)

    def test_wide_spread(self, frontier):
        assert frontier.spread > 4.0


class TestSummitShape:
    def test_tight_distribution_around_8_5(self, summit):
        # "a tight distribution of measurements of ~8.5 GB/s per NIC"
        assert summit.quantile(0.5) / 1e9 == pytest.approx(8.5, rel=0.05)
        assert summit.spread < 1.6

    def test_summit_is_tighter_than_frontier(self, summit, frontier):
        assert summit.spread < frontier.spread / 2


class TestCrossSystemComparison:
    def test_frontier_best_pairs_beat_summit(self, frontier, summit):
        # Frontier's intra-group 17.5 GB/s > Summit's 8.5 GB/s ...
        assert frontier.max_gbs > summit.max_gbs

    def test_frontier_worst_pairs_lose_to_summit(self, frontier, summit):
        # ... but its tapered global floor is below Summit's EDR floor.
        assert frontier.min_gbs < summit.min_gbs

    def test_similar_fraction_of_line_rate_at_the_top(self, frontier, summit):
        # "This very small distribution achieves a similar percentage of
        # peak as Summit's tight distribution."
        frontier_frac = frontier.quantile(0.995) / 1e9 / 25.0
        summit_frac = summit.quantile(0.5) / 1e9 / 12.5
        assert frontier_frac == pytest.approx(summit_frac, abs=0.1)


class TestHistogramObject:
    def test_histogram_bins(self, frontier):
        counts, edges = frontier.histogram(bins=20)
        assert counts.shape == (20,)
        assert edges[0] == 0.0 and edges[-1] == 20.0

    def test_weights_shape_validated(self):
        with pytest.raises(ConfigurationError):
            MpiGraphHistogram(bandwidths=np.ones(4), weights=np.ones(3))

    def test_quantile_ordering(self, frontier):
        assert frontier.quantile(0.1) <= frontier.quantile(0.9)


class TestFlowLevelSimulation:
    def test_reduced_scale_sim_reproduces_the_trend(self, small_network):
        hist = simulate_mpigraph(small_network, offsets=[1, 8, 24, 48])
        # intra-group fast pairs and global slow pairs both present
        assert hist.max_gbs > 15.0
        assert hist.min_gbs < 8.0
        assert hist.spread > 2.0
