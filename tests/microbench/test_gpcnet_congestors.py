"""Per-congestor-pattern impact tests (the five GPCNeT patterns)."""

import pytest

from repro.microbench.gpcnet import (CongestorPattern, GpcnetConfig,
                                     impact_by_congestor)


class TestPatterns:
    def test_all_five_paper_patterns_present(self):
        # "various communication patterns (i.e., all-to-all, one- and
        # two-sided incast, one- and two-sided broadcasts)"
        labels = {p.label for p in CongestorPattern}
        assert labels == {"all-to-all", "one-sided incast",
                          "two-sided incast", "one-sided broadcast",
                          "two-sided broadcast"}

    def test_incast_is_the_worst_hotspot(self):
        factors = {p.label: p.hotspot_factor for p in CongestorPattern}
        assert factors["two-sided incast"] == max(factors.values())
        assert factors["one-sided broadcast"] == min(factors.values())


class TestImpacts:
    def test_8ppn_every_pattern_is_ideal(self):
        impacts = impact_by_congestor()
        for imp in impacts.values():
            assert imp.latency_avg == pytest.approx(1.0, abs=0.05)
            assert imp.bandwidth == pytest.approx(1.0, abs=0.03)

    def test_32ppn_ordering_matches_hotspot_severity(self):
        impacts = impact_by_congestor(GpcnetConfig(ppn=32))
        assert (impacts["two-sided incast"].latency_avg
                >= impacts["all-to-all"].latency_avg
                >= impacts["one-sided broadcast"].latency_avg)

    def test_32ppn_within_paper_bands(self):
        impacts = impact_by_congestor(GpcnetConfig(ppn=32))
        worst_avg = max(i.latency_avg for i in impacts.values())
        worst_p99 = max(i.latency_p99 for i in impacts.values())
        assert 1.15 <= worst_avg <= 1.7
        assert 1.8 <= worst_p99 <= 8.0
