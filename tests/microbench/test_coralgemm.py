"""CoralGemm sweep harness tests."""

import pytest

from repro.microbench.coralgemm import coralgemm_sweep
from repro.node.gpu import Precision


@pytest.fixture(scope="module")
def result():
    return coralgemm_sweep(sizes=[512, 2048, 16384], host_n=96)


class TestSweep:
    def test_covers_three_precisions(self, result):
        assert set(result.points) == {Precision.FP64, Precision.FP32,
                                      Precision.FP16}

    def test_endpoints_match_figure3(self, result):
        assert result.achieved_tflops(Precision.FP64) == pytest.approx(33.8,
                                                                       rel=0.01)
        assert result.achieved_tflops(Precision.FP16) == pytest.approx(111.2,
                                                                       rel=0.01)

    def test_figure3_summary_included(self, result):
        assert result.figure3["FP64"]["exceeds_vector_peak"] == 1.0

    def test_host_dgemm_ran(self, result):
        assert result.host_dgemm_flops > 0
