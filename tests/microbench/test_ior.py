"""IOR model tests (§4.3.2 methodology knobs)."""

import pytest

from repro.errors import ConfigurationError
from repro.microbench.ior import IorAccess, IorJob, run_ior
from repro.storage.pfl import Tier


class TestAccessPatterns:
    def test_fpp_beats_ssf(self):
        fpp = run_ior(IorJob(access=IorAccess.FILE_PER_PROCESS))
        ssf = run_ior(IorJob(access=IorAccess.SINGLE_SHARED_FILE))
        assert fpp.bandwidth > ssf.bandwidth

    def test_ssf_contention_grows_with_ranks(self):
        small = run_ior(IorJob(nodes=64, access=IorAccess.SINGLE_SHARED_FILE))
        # compare efficiency (bandwidth normalised by the binding limit)
        big = run_ior(IorJob(nodes=9408, access=IorAccess.SINGLE_SHARED_FILE))
        fpp_big = run_ior(IorJob(nodes=9408))
        assert big.bandwidth < fpp_big.bandwidth
        assert small.bound_by == "clients"   # small jobs can't fill Orion

    def test_aligned_beats_unaligned_writes(self):
        aligned = run_ior(IorJob(aligned=True))
        unaligned = run_ior(IorJob(aligned=False))
        assert unaligned.bandwidth < 0.75 * aligned.bandwidth

    def test_reads_ignore_alignment(self):
        a = run_ior(IorJob(aligned=True, read=True))
        b = run_ior(IorJob(aligned=False, read=True))
        assert a.bandwidth == b.bandwidth


class TestMeasuredRates:
    def test_full_system_fpp_hits_the_flash_write_rate(self):
        # big aligned transfers from the whole machine reach ~9.4 TB/s
        result = run_ior(IorJob(transfer_bytes=64 * 1024 * 1024))
        assert result.bandwidth_tbs == pytest.approx(9.4, rel=0.05)
        assert result.bound_by == "servers"

    def test_capacity_tier_writes(self):
        result = run_ior(IorJob(tier=Tier.CAPACITY,
                                transfer_bytes=64 * 1024 * 1024))
        assert result.bandwidth_tbs == pytest.approx(4.3, rel=0.05)

    def test_flash_reads_beat_writes(self):
        w = run_ior(IorJob(transfer_bytes=64 * 1024 * 1024))
        r = run_ior(IorJob(transfer_bytes=64 * 1024 * 1024, read=True))
        assert r.bandwidth > w.bandwidth


class TestScalingKnobs:
    def test_small_transfers_degrade(self):
        small = run_ior(IorJob(transfer_bytes=64 * 1024))
        big = run_ior(IorJob(transfer_bytes=64 * 1024 * 1024))
        assert small.bandwidth < 0.3 * big.bandwidth

    def test_client_limit_binds_small_jobs(self):
        result = run_ior(IorJob(nodes=128))
        assert result.bound_by == "clients"
        assert result.bandwidth == pytest.approx(128 * 8e9, rel=0.01)

    def test_bandwidth_monotone_in_nodes(self):
        rates = [run_ior(IorJob(nodes=n)).bandwidth
                 for n in (64, 512, 4096, 9408)]
        assert rates == sorted(rates)

    def test_seconds_accounting(self):
        r = run_ior(IorJob(nodes=64))
        assert r.seconds == pytest.approx(r.job.total_bytes / r.bandwidth)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IorJob(nodes=0)
        with pytest.raises(ConfigurationError):
            IorJob(transfer_bytes=0)
