"""GPCNeT simulation tests — reproduces Table 5."""

import pytest

from repro.errors import ConfigurationError
from repro.microbench.gpcnet import GpcnetConfig, run_gpcnet

LAT = "RR Two-sided Lat (8 B)"
BW = "RR Two-sided BW+Sync (131072 B)"
AR = "Multiple Allreduce (8 B)"


@pytest.fixture(scope="module")
def iso8():
    return run_gpcnet(congested=False, rng=1)


@pytest.fixture(scope="module")
def con8():
    return run_gpcnet(congested=True, rng=1)


class TestIsolatedTable5:
    def test_rr_latency_avg_2_6_usec(self, iso8):
        assert iso8.rows[LAT].average == pytest.approx(2.6, rel=0.10)

    def test_rr_latency_p99_4_8_usec(self, iso8):
        assert iso8.rows[LAT].p99 == pytest.approx(4.8, rel=0.15)

    def test_rr_bandwidth_3497_mibps(self, iso8):
        assert iso8.rows[BW].average == pytest.approx(3497.2, rel=0.05)

    def test_rr_bandwidth_p99_2514_mibps(self, iso8):
        assert iso8.rows[BW].p99 == pytest.approx(2514.4, rel=0.05)

    def test_allreduce_51_5_usec(self, iso8):
        assert iso8.rows[AR].average == pytest.approx(51.5, rel=0.05)
        assert iso8.rows[AR].p99 == pytest.approx(54.1, rel=0.06)

    def test_units(self, iso8):
        assert iso8.rows[LAT].units == "usec"
        assert iso8.rows[BW].units == "MiB/s/rank"


class TestCongested8Ppn:
    def test_ideal_result_congested_equals_isolated(self, iso8, con8):
        # "With 8 PPN, the result is ideal (congested is no worse than
        # isolated)" — impact factor ~1.0x on every metric.
        impact = con8.impact_vs(iso8)
        for metrics in impact.values():
            assert metrics["avg"] == pytest.approx(1.0, abs=0.06)
            assert metrics["p99"] == pytest.approx(1.0, abs=0.12)


class Test32Ppn:
    @pytest.fixture(scope="class")
    def impact32(self):
        cfg = GpcnetConfig(ppn=32)
        iso = run_gpcnet(cfg, congested=False, rng=2)
        con = run_gpcnet(cfg, congested=True, rng=2)
        return con.impact_vs(iso)

    def test_average_impacts_degrade_but_bounded(self, impact32):
        # Paper: 1.2-1.6x average degradation at 32 PPN.
        avgs = [m["avg"] for m in impact32.values()]
        assert max(avgs) <= 1.7
        assert max(avgs) >= 1.15

    def test_tail_impacts_within_paper_band(self, impact32):
        # Paper: 1.8-7.6x at the 99th percentile.
        p99s = [m["p99"] for m in impact32.values()]
        assert max(p99s) <= 8.0
        assert max(p99s) >= 1.8

    def test_32ppn_isolated_is_already_slower_than_8ppn(self, iso8):
        iso32 = run_gpcnet(GpcnetConfig(ppn=32), congested=False, rng=2)
        assert iso32.rows[LAT].average > iso8.rows[LAT].average
        assert iso32.rows[BW].average < iso8.rows[BW].average


class TestConfig:
    def test_victim_congestor_split(self):
        cfg = GpcnetConfig()
        # "7,520 congestor nodes ... and 1,880 victim nodes"
        assert cfg.congestor_nodes == 7520
        assert cfg.victim_nodes == 1880

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            GpcnetConfig(congestor_fraction=1.0)

    def test_invalid_ppn(self):
        with pytest.raises(ConfigurationError):
            GpcnetConfig(ppn=0)

    def test_deterministic_given_seed(self):
        a = run_gpcnet(congested=False, rng=7).rows[LAT].average
        b = run_gpcnet(congested=False, rng=7).rows[LAT].average
        assert a == b
