"""Unit algebra tests."""

import pytest

from repro.units import (GiB, KiB, MiB, PiB, TiB, GB,
                         bytes_from, format_bandwidth, format_bytes,
                         format_flops, geometric_mean, harmonic_mean,
                         parse_size, to_unit)


class TestConstants:
    def test_binary_multiples_are_powers_of_two(self):
        assert KiB == 2 ** 10
        assert MiB == 2 ** 20
        assert GiB == 2 ** 30
        assert TiB == 2 ** 40
        assert PiB == 2 ** 50

    def test_si_vs_iec_gap_grows(self):
        # The GiB/GB discrepancy is ~7.4%; PiB/PB ~12.6% — the paper's
        # Table 1 unit mixing matters at this scale.
        assert GiB / GB == pytest.approx(1.0737, abs=1e-4)
        assert PiB / 1e15 == pytest.approx(1.1259, abs=1e-4)


class TestConversions:
    def test_bytes_from_gib(self):
        assert bytes_from(64, "GiB") == 64 * 2 ** 30

    def test_bytes_from_tb(self):
        assert bytes_from(3.5, "TB") == 3.5e12

    def test_to_unit_roundtrip(self):
        for unit in ("KiB", "MiB", "GiB", "TiB", "PiB", "KB", "GB", "TB", "PB"):
            assert to_unit(bytes_from(7.25, unit), unit) == pytest.approx(7.25)

    def test_rate_suffixes_accepted(self):
        assert bytes_from(25, "GB/s") == 25e9
        assert bytes_from(1.6354, "TB/s") == pytest.approx(1.6354e12)

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError):
            bytes_from(1, "XB")

    def test_parse_size(self):
        assert parse_size("256 KB") == 256e3
        assert parse_size("8MiB") == 8 * 2 ** 20
        assert parse_size("3.5 TB") == 3.5e12
        assert parse_size("42") == 42.0
        assert parse_size("17 B") == 17.0

    def test_parse_size_rejects_empty_number(self):
        with pytest.raises(ValueError):
            parse_size("GiB")


class TestFormatting:
    def test_format_bytes_binary(self):
        assert format_bytes(2 ** 30) == "1.0 GiB"

    def test_format_bytes_si(self):
        assert format_bytes(1e9, binary=False) == "1.0 GB"

    def test_format_bandwidth_default_si(self):
        assert format_bandwidth(25e9) == "25.0 GB/s"

    def test_format_flops(self):
        assert format_flops(1.102e18) == "1.1 EFLOP/s"

    def test_format_zero(self):
        assert format_bytes(0.0) == "0 B"

    def test_format_small_value_no_prefix(self):
        assert format_bytes(12.0, precision=0) == "12 B"


class TestMeans:
    def test_harmonic_mean_exasmr(self):
        # The paper's combined ExaSMR FOM: harmonic mean of 54 and 99.6.
        assert harmonic_mean([54.0, 99.6]) == pytest.approx(70.03, abs=0.05)

    def test_geometric_mean(self):
        assert geometric_mean([4.0, 16.0]) == pytest.approx(8.0)

    def test_means_reject_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0, 2.0])
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_harmonic_leq_geometric(self):
        values = [3.0, 7.0, 11.0]
        assert harmonic_mean(values) <= geometric_mean(values)
