"""FrontierMachine facade tests."""

import pytest

from repro.core.machine import FrontierMachine
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def machine() -> FrontierMachine:
    return FrontierMachine()


class TestAggregates:
    def test_gcd_count(self, machine):
        assert machine.gcd_count == 75776

    def test_gpu_threads_over_half_billion(self, machine):
        assert machine.gpu_threads > 500_000_000

    def test_memory_capacities_match_table1(self, machine):
        t1 = machine.table1()
        assert machine.hbm_capacity_bytes / 2 ** 50 == pytest.approx(
            t1["hbm2e_capacity_PiB"])

    def test_node_local_aggregate_rates(self, machine):
        assert machine.node_local_read_bandwidth == pytest.approx(67.3e12,
                                                                  rel=0.01)
        assert machine.node_local_write_bandwidth == pytest.approx(39.8e12,
                                                                   rel=0.01)

    def test_summary_keys(self, machine):
        s = machine.summary()
        for key in ("power_MW", "gflops_per_watt", "system_mtti_hours",
                    "orion_capacity_PB", "nodes"):
            assert key in s

    def test_orion_capacity_around_700_pb(self, machine):
        s = machine.summary()
        assert 650 < s["orion_capacity_PB"] < 750


class TestFactories:
    def test_scheduler_covers_machine(self, machine):
        sched = FrontierMachine(node_count=256).scheduler()
        assert sched.n_nodes == 256

    def test_resilience_attached(self, machine):
        assert machine.resilience.system_mtti_hours > 0


class TestValidation:
    def test_node_count_positive(self):
        with pytest.raises(ConfigurationError):
            FrontierMachine(node_count=0)

    def test_node_count_bounded_by_fabric(self):
        with pytest.raises(ConfigurationError):
            FrontierMachine(node_count=100_000)

    def test_reduced_machine_is_fine(self):
        m = FrontierMachine(node_count=128)
        assert m.gcd_count == 1024
