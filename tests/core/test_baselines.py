"""Baseline machine model tests."""

import pytest

from repro.core.baselines import (BASELINES, CORI, FRONTIER, MIRA, SUMMIT,
                                  THETA, TITAN, MachineModel)
from repro.errors import ConfigurationError


class TestFrontier:
    def test_node_and_gpu_counts(self):
        assert FRONTIER.nodes == 9472
        assert FRONTIER.gpus == 75776   # 8 GCDs per node

    def test_sustained_dgemm_2ef(self):
        # Table 1's "FP64 DGEMM 2.0 EF"
        gpu_only = FRONTIER.gpus * FRONTIER.fp64_per_gpu
        assert gpu_only == pytest.approx(2.0e18, rel=0.01)

    def test_nic_per_gpu_ratio(self):
        assert FRONTIER.nics_per_gpu() == pytest.approx(0.5)


class TestComparisons:
    def test_summit_gpu_count(self):
        assert SUMMIT.gpus == 27648

    def test_titan_one_gpu_per_node(self):
        assert TITAN.gpus == 18688

    def test_cpu_machines_have_no_gpus(self):
        for m in (MIRA, THETA, CORI):
            assert m.gpus == 0
            assert m.nics_per_gpu() == 0.0

    def test_ecp_baselines_are_20pf_class(self):
        # "the reigning DOE systems were in the ~20 PF range"
        for m in (MIRA, THETA, CORI):
            assert 5e15 < m.system_fp64 < 35e15

    def test_frontier_is_50x_the_baseline_generation_in_flops(self):
        # the hardware alone supplies a large share of the 50x target
        assert FRONTIER.system_fp64 / THETA.system_fp64 > 100

    def test_registry_complete(self):
        assert set(BASELINES) == {"Frontier", "Summit", "Titan", "Mira",
                                  "Theta", "Cori", "Sequoia", "Aurora"}

    def test_efficiency_improved_each_generation(self):
        assert (TITAN.gflops_per_watt < SUMMIT.gflops_per_watt
                < FRONTIER.gflops_per_watt)


class TestValidation:
    def test_positive_nodes_required(self):
        with pytest.raises(ConfigurationError):
            MachineModel(name="bad", year=2020, nodes=0, gpus_per_node=1,
                         fp64_per_gpu=1.0, fp64_per_node_cpu=1.0,
                         memory_per_node=1.0, node_injection=1.0,
                         power_mw=1.0)

    def test_peak_override(self):
        assert MIRA.system_fp64 == pytest.approx(10.07e15)
