"""The machine-family registry and the cross-machine study harness."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.baselines import FRONTIER
from repro.core.compare import (DEFAULT_COMPARE_FAMILIES, HPL_INJECTION_AI,
                                compare_machines, project_family)
from repro.core.family import (DEFAULT_FAMILY, MachineFamily, family,
                               family_names, register_family,
                               staging_factor_for)
from repro.core.machine import FrontierMachine, Machine
from repro.core.scenario import MachineSpec
from repro.errors import ConfigurationError

#: Byte-stability anchor: the canonical Frontier spec document must hash
#: to exactly what it did before the family field existed — sweep task
#: hashes (and therefore resumable artifacts) key on this.
FRONTIER_SPEC_SHA256 = \
    "11f5ea5726c6713e62208674846a22571a8cb589c9050d4043e95622ca371f3a"


class TestRegistry:
    def test_three_families_registered_in_order(self):
        assert family_names() == ("frontier", "summit", "aurora")
        assert DEFAULT_FAMILY == "frontier"

    def test_lookup_is_case_insensitive(self):
        assert family("Aurora") is family("aurora")

    def test_unknown_family_lists_registered_names(self):
        with pytest.raises(ConfigurationError, match="frontier"):
            family("elcap")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_family(family("frontier"))

    def test_replace_allows_reregistration(self):
        fam = family("frontier")
        register_family(fam, replace=True)
        assert family("frontier") is fam

    def test_anchors_validated(self):
        fam = family("frontier")
        with pytest.raises(ConfigurationError):
            MachineFamily(name="bad", description="", spec=fam.spec,
                          node=fam.node, power=fam.power, model=fam.model,
                          rpeak_flops=1.0, hpl_rmax_flops=2.0,
                          hpcg_flops=1.0)

    def test_staging_factor_keyed_by_family(self):
        assert staging_factor_for("summit") == 6.9
        assert staging_factor_for("frontier") == 1.0
        assert staging_factor_for("no-such-machine") == 1.0

    def test_hpl_efficiency_derived_from_anchors(self):
        fam = family("frontier")
        assert fam.hpl_efficiency == pytest.approx(1.102e18 / 1.6856e18)


class TestSpecRoundTrips:
    @pytest.mark.parametrize("name", ["frontier", "summit", "aurora"])
    def test_family_spec_round_trips(self, name):
        spec = family(name).spec()
        assert spec.family == name
        assert MachineSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("name", ["frontier", "summit", "aurora"])
    def test_round_trip_content_hash_is_stable(self, name):
        spec = family(name).spec()
        once = MachineSpec.from_json(spec.to_json())
        h = [hashlib.sha256(s.to_json().encode()).hexdigest()
             for s in (spec, once)]
        assert h[0] == h[1]

    def test_frontier_document_is_byte_stable(self):
        # The default family serializes to *nothing*: pre-registry spec
        # files and sweep task hashes must not notice the new field.
        doc = family("frontier").spec().to_dict()
        assert "family" not in doc
        digest = hashlib.sha256(
            family("frontier").spec().to_json().encode()).hexdigest()
        assert digest == FRONTIER_SPEC_SHA256

    def test_non_default_family_serializes(self):
        assert family("aurora").spec().to_dict()["family"] == "aurora"
        assert family("summit").spec().to_dict()["family"] == "summit"

    def test_scaled_preserves_family_tag(self):
        scaled = family("aurora").spec().scaled(8, 4, 4)
        assert scaled.family == "aurora"
        assert MachineSpec.from_json(scaled.to_json()).family == "aurora"

    def test_degraded_preserves_family_tag(self):
        degraded = family("aurora").spec().degraded(failed_nodes=(0,))
        assert degraded.family == "aurora"


class TestMachineAssembly:
    @pytest.mark.parametrize("name", ["frontier", "summit", "aurora"])
    def test_every_family_assembles_from_its_spec(self, name):
        machine = Machine.from_spec(family(name).spec())
        assert machine.family == name
        assert machine.node_count == family(name).spec().node_count

    def test_frontier_machine_alias_still_works(self):
        assert FrontierMachine is Machine
        assert FrontierMachine().family == "frontier"

    def test_aurora_geometry_matches_nic_budget(self):
        spec = family("aurora").spec()
        cfg = spec.fabric_config()
        assert spec.node_count == 10624 and spec.nics_per_node == 8
        assert cfg.total_endpoints == spec.node_count * spec.nics_per_node

    def test_node_model_duck_surface(self):
        frontier_node = family("frontier").node()
        for name in ("aurora", "summit"):
            node = family(name).node()
            for attr in ("nic_count", "gcd_count", "hbm_bandwidth",
                         "injection_bandwidth", "p2p_bandwidth",
                         "sustained_dgemm_per_device", "gpu_threads",
                         "ddr_bandwidth", "ddr_capacity_bytes"):
                assert hasattr(node, attr), attr
                assert hasattr(frontier_node, attr), attr
            assert node.peak_flops() > 0

    def test_power_models_keyed_by_family(self):
        mw = {n: family(n).power().hpl_power / 1e6
              for n in family_names()}
        assert 20.0 < mw["frontier"] < 23.0      # paper: 21.1 MW HPL run
        assert 9.0 < mw["summit"] < 11.0         # Top500: ~10 MW
        assert 30.0 < mw["aurora"] < 42.0        # Top500: ~38.7 MW


class TestCompare:
    @pytest.fixture(scope="class")
    def doc(self):
        return compare_machines()

    def test_document_shape(self, doc):
        assert [f["family"] for f in doc["families"]] == \
            list(DEFAULT_COMPARE_FAMILIES)
        for section in ("table6", "table7", "projection"):
            assert len(doc[section]) > 0
        for row in doc["table6"] + doc["table7"]:
            assert set(row["achieved"]) == set(DEFAULT_COMPARE_FAMILIES)

    def test_frontier_rows_bit_identical_to_apps_path(self, doc):
        # The registry's frontier model IS the baselines FRONTIER object,
        # so compare's Table 6/7 numbers equal a.speedup() exactly —
        # float equality, not approx.
        from repro.apps import CAAR_APPS, ECP_APPS
        for apps, rows in ((CAAR_APPS(), doc["table6"]),
                           (ECP_APPS(), doc["table7"])):
            for a, row in zip(apps, rows):
                assert row["application"] == a.name
                assert row["achieved"]["frontier"] == a.speedup()
                assert row["achieved"]["frontier"] == a.speedup(FRONTIER)

    def test_frontier_hpl_within_10pct_of_measured(self, doc):
        assert doc["frontier_hpl_within_10pct"] is True
        p = next(p for p in doc["projection"] if p["family"] == "frontier")
        assert p["hpl_projected_pflops"] == pytest.approx(1102.0, rel=0.10)
        assert doc["frontier_roofline_hpl_pflops"] == \
            pytest.approx(p["hpl_projected_pflops"], rel=0.10)

    def test_projection_reproduces_every_list_entry(self, doc):
        for p in doc["projection"]:
            assert p["hpl_vs_measured"] == pytest.approx(1.0)
            assert p["binding"] == "compute"
            assert p["hpcg_projected_pflops"] == \
                pytest.approx(p["hpcg_measured_pflops"])

    def test_bounds_separate_when_nics_starve(self):
        fam = family("frontier")
        full = project_family(fam)
        assert full.binding == "compute"
        assert full.interconnect_bound_flops == pytest.approx(
            full.nodes * fam.node().injection_bandwidth * HPL_INJECTION_AI)
        # Strangle injection bandwidth: on one NIC per node the
        # interconnect bound undercuts compute and the binding flips.
        starved = project_family(fam, nics_per_node=1)
        assert starved.binding == "interconnect"
        assert starved.hpl_flops < full.hpl_flops
        assert starved.compute_bound_flops == full.compute_bound_flops

    def test_subset_selection(self):
        doc = compare_machines(["aurora"])
        assert [f["family"] for f in doc["families"]] == ["aurora"]
        assert "frontier_hpl_within_10pct" not in doc

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="el-cap"):
            compare_machines(["el-cap"])

    def test_json_serializable(self, doc):
        assert json.loads(json.dumps(doc)) == doc


class TestSweepIntegration:
    def test_machine_family_axis_swaps_preset(self):
        from repro.core.scenario import frontier_spec
        from repro.sweep.plan import apply_axes
        spec = apply_axes(frontier_spec(), {"machine_family": "aurora"})
        assert spec == family("aurora").spec()

    def test_machine_family_applies_before_other_axes(self):
        from repro.core.scenario import frontier_spec
        from repro.sweep.plan import apply_axes
        spec = apply_axes(frontier_spec(),
                          {"nics_per_node": 4, "machine_family": "aurora"})
        assert spec.family == "aurora"
        assert spec.nics_per_node == 4

    def test_frontier_task_hash_unchanged_by_refactor(self):
        from repro.core.scenario import frontier_spec
        from repro.sweep.plan import task_hash
        assert task_hash(frontier_spec(), "mpigraph", 0) == \
            "a64fb20331f0b191"

    def test_compare_probe_scalar_metrics(self):
        import numpy as np
        from repro.sweep.probes import probe_compare
        rng = np.random.default_rng(0)
        for name in family_names():
            values = probe_compare(family(name).spec(), rng)
            assert values["hpl_vs_measured"] == pytest.approx(1.0)
            assert all(isinstance(v, float) for v in values.values())
        frontier = probe_compare(family("frontier").spec(), rng)
        assert frontier["kpp_met"] == 11.0
