"""The scenario layer: spec round trips, variants, and the config funnel."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.core.machine import FrontierMachine
from repro.core.scenario import (SPEC_SCHEMA_VERSION, CongestionSpec,
                                 DegradationSpec, DragonflyGeometry,
                                 FatTreeGeometry, MachineSpec, StorageSpec,
                                 frontier_spec, resolve_dragonfly,
                                 summit_spec)
from repro.errors import ConfigurationError
from repro.fabric.dragonfly import FRONTIER_DRAGONFLY, DragonflyConfig
from repro.fabric.network import FatTreeNetwork, SlingshotNetwork
from repro.fabric.routing import RoutingPolicy


class TestJsonRoundTrip:
    def test_frontier_spec_round_trips(self):
        spec = frontier_spec()
        assert MachineSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("spec", [
        summit_spec(),
        frontier_spec().scaled(8, 4, 4),
        frontier_spec().scaled(6, 4, 4).degraded(failed_links=(3, 1),
                                                 failed_nodes=(0,)),
        MachineSpec(name="custom", node_count=64, nics_per_node=2,
                    fabric=DragonflyGeometry(groups=9, switches_per_group=4,
                                             endpoints_per_switch=4),
                    routing="minimal"),
    ])
    def test_every_variant_round_trips(self, spec):
        assert MachineSpec.from_json(spec.to_json()) == spec

    def test_document_shape(self):
        doc = json.loads(frontier_spec().to_json())
        assert doc["schema"] == SPEC_SCHEMA_VERSION
        assert doc["fabric"]["kind"] == "dragonfly"
        assert doc["node_count"] == 9472
        assert doc["storage"]["ssu_count"] == 225
        assert doc["degradation"] == {"failed_links": [], "failed_nodes": []}

    def test_save_load_round_trip(self, tmp_path):
        spec = frontier_spec().scaled(6, 4, 4)
        path = spec.save(str(tmp_path / "spec.json"))
        assert MachineSpec.load(path) == spec

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid"):
            MachineSpec.from_json("{nope")

    def test_unknown_schema_rejected(self):
        doc = frontier_spec().to_dict()
        doc["schema"] = 99
        with pytest.raises(ConfigurationError, match="schema"):
            MachineSpec.from_dict(doc)

    def test_unknown_fabric_kind_rejected(self):
        doc = frontier_spec().to_dict()
        doc["fabric"] = {"kind": "torus"}
        with pytest.raises(ConfigurationError, match="torus"):
            MachineSpec.from_dict(doc)

    def test_unknown_fabric_field_rejected(self):
        doc = frontier_spec().to_dict()
        doc["fabric"]["warp_factor"] = 9
        with pytest.raises(ConfigurationError, match="warp_factor"):
            MachineSpec.from_dict(doc)


class TestValidation:
    def test_endpoint_capacity_enforced(self):
        with pytest.raises(ConfigurationError, match="endpoints"):
            MachineSpec(node_count=10_000)

    def test_routing_matches_fabric_kind(self):
        with pytest.raises(ConfigurationError, match="routing"):
            MachineSpec(routing="warp")
        with pytest.raises(ConfigurationError, match="ECMP"):
            MachineSpec(name="summit", node_count=432, nics_per_node=1,
                        fabric=FatTreeGeometry(), routing="ugal")

    def test_failed_nodes_must_exist(self):
        with pytest.raises(ConfigurationError, match="failed node"):
            MachineSpec(degradation=DegradationSpec(failed_nodes=(9472,)))

    def test_degradation_normalised(self):
        d = DegradationSpec(failed_links=(5, 1, 5), failed_nodes=(2.0,))
        assert d.failed_links == (1, 5)
        assert d.failed_nodes == (2,)
        assert not d.is_pristine
        with pytest.raises(ConfigurationError):
            DegradationSpec(failed_links=(-1,))

    def test_storage_validated(self):
        with pytest.raises(ConfigurationError):
            StorageSpec(ssu_count=0)

    def test_congestion_validated(self):
        with pytest.raises(ConfigurationError, match="ecn_k"):
            CongestionSpec(ecn_k=0)
        with pytest.raises(ConfigurationError, match="burst_duty"):
            CongestionSpec(burst_duty=1.5)
        with pytest.raises(ConfigurationError, match="incast_fanin"):
            CongestionSpec(incast_fanin=0)


class TestCongestionSpec:
    """The congestion knobs must not disturb existing spec documents."""

    def test_default_knobs_do_not_serialize(self):
        # Pre-congestion spec files and sweep task hashes stay stable.
        assert "congestion" not in frontier_spec().to_dict()

    def test_non_default_knobs_round_trip(self):
        from dataclasses import replace
        spec = replace(frontier_spec(),
                       congestion=CongestionSpec(ecn=False, ecn_k=10,
                                                 burst_duty=0.5,
                                                 incast_fanin=16))
        doc = spec.to_dict()
        assert doc["congestion"] == {"ecn": False, "ecn_k": 10,
                                     "burst_duty": 0.5, "incast_fanin": 16}
        assert MachineSpec.from_dict(doc) == spec

    def test_values_normalised(self):
        knobs = CongestionSpec(ecn_k=30.0, incast_fanin=8.0)
        assert knobs.ecn_k == 30 and isinstance(knobs.ecn_k, int)
        assert knobs.incast_fanin == 8
        assert knobs.is_default


class TestMachineRoundTrip:
    def test_from_spec_spec_is_identity(self):
        spec = frontier_spec()
        assert FrontierMachine.from_spec(spec).spec() == spec

    def test_from_spec_preserves_summary(self):
        machine = FrontierMachine()
        rebuilt = FrontierMachine.from_spec(machine.spec())
        assert rebuilt.summary() == machine.summary()

    def test_fat_tree_machine_assembles_but_comm_points_elsewhere(self):
        # from_spec now resolves Summit via the family registry; only the
        # dragonfly-specific comm() surface refuses, with a pointer.
        machine = FrontierMachine.from_spec(summit_spec())
        assert machine.family == "summit"
        assert machine.spec() == summit_spec()
        from repro.mpi.job import JobLayout
        with pytest.raises(ConfigurationError, match="build_network"):
            machine.comm(JobLayout.contiguous(4))

    def test_machine_factories_trace_back_to_spec(self):
        machine = frontier_spec().scaled(6, 4, 4).machine()
        net = machine.network(rng=0)
        assert isinstance(net, SlingshotNetwork)
        assert net.config == machine.fabric
        comm = machine.comm(__import__(
            "repro.mpi.job", fromlist=["JobLayout"]).JobLayout.contiguous(4))
        assert comm.config == machine.fabric

    def test_degraded_machine_drains_nodes_and_links(self):
        machine = frontier_spec().scaled(6, 4, 4).machine()
        degraded = machine.degraded(failed_links=(2,), failed_nodes=(0, 1))
        assert degraded.healthy_node_count == machine.node_count - 2
        assert degraded.scheduler().n_nodes == degraded.healthy_node_count
        net = degraded.network(rng=0)
        assert net.router.disabled == {2}


class TestVariants:
    def test_scaled_follows_endpoint_pool(self):
        small = frontier_spec().scaled(8, 4, 4)
        assert small.node_count == 8 * 4 * 4 // 4
        assert small.name == "frontier-scaled-8x4x4"
        assert small.fabric.groups == 8

    def test_scaled_drops_degradation(self):
        spec = frontier_spec().degraded(failed_links=(7,))
        assert spec.scaled(8, 4, 4).degradation.is_pristine

    def test_degraded_merges_and_dedupes(self):
        spec = frontier_spec().degraded(failed_links=(3,))
        again = spec.degraded(failed_links=(3, 1))
        assert again.degradation.failed_links == (1, 3)

    def test_fat_tree_cannot_scale(self):
        with pytest.raises(ConfigurationError, match="dragonfly"):
            summit_spec().scaled(4, 4, 4)


class TestBuildNetwork:
    def test_dragonfly_and_fattree_dispatch(self):
        assert isinstance(frontier_spec().scaled(6, 4, 4).build_network(rng=0),
                          SlingshotNetwork)
        assert isinstance(summit_spec().build_network(rng=0), FatTreeNetwork)

    def test_failed_links_disabled_on_router(self):
        spec = frontier_spec().scaled(6, 4, 4).degraded(failed_links=(1, 3))
        net = spec.build_network(rng=0)
        assert net.router.disabled == {1, 3}

    def test_routing_policy_honoured(self):
        spec = frontier_spec().scaled(6, 4, 4)
        valiant = MachineSpec.from_dict(
            {**spec.to_dict(), "routing": "valiant"})
        assert valiant.build_network(rng=0).policy is RoutingPolicy.VALIANT
        assert valiant.routing_policy is RoutingPolicy.VALIANT
        assert summit_spec().routing_policy is None


class TestResolveDragonfly:
    def test_none_resolves_to_frontier_fabric(self):
        assert resolve_dragonfly(None) == FRONTIER_DRAGONFLY

    def test_config_passes_through(self):
        cfg = DragonflyConfig().scaled(8, 4, 4)
        assert resolve_dragonfly(cfg) is cfg

    def test_spec_and_machine_resolve(self):
        spec = frontier_spec().scaled(6, 4, 4)
        assert resolve_dragonfly(spec) == spec.fabric_config()
        assert resolve_dragonfly(spec.machine()) == spec.fabric_config()

    def test_fat_tree_sources_rejected(self):
        with pytest.raises(ConfigurationError, match="dragonfly"):
            resolve_dragonfly(summit_spec())
        with pytest.raises(ConfigurationError, match="FatTreeConfig"):
            resolve_dragonfly(summit_spec().fabric_config())


class TestGridExpanderEdgeCases:
    """Edge cases the sweep grid expander leans on: composed variants must
    survive JSON, and the serialized form must be byte-stable (task hashes
    are content hashes of ``to_json``)."""

    def test_scaled_then_degraded_round_trips(self):
        spec = (frontier_spec().scaled(8, 4, 4)
                .degraded(failed_links=(7, 2), failed_nodes=(1,)))
        back = MachineSpec.from_json(spec.to_json())
        assert back == spec
        assert back.degradation.failed_links == (2, 7)

    def test_degraded_then_scaled_drops_then_reapplies(self):
        spec = (frontier_spec().degraded(failed_links=(5,))
                .scaled(8, 4, 4).degraded(failed_nodes=(3,)))
        back = MachineSpec.from_json(spec.to_json())
        assert back == spec
        assert back.degradation.failed_links == ()   # scaling dropped them
        assert back.degradation.failed_nodes == (3,)

    def test_double_round_trip_is_stable(self):
        spec = frontier_spec().scaled(8, 4, 4).degraded(failed_links=(1,))
        once = MachineSpec.from_json(spec.to_json())
        twice = MachineSpec.from_json(once.to_json())
        assert once.to_json() == twice.to_json() == spec.to_json()

    def test_to_json_stable_across_dict_ordering(self):
        """Shuffled document key order must not change the canonical form
        (and therefore must not change a sweep task's content hash)."""
        spec = frontier_spec().scaled(8, 4, 4).degraded(failed_links=(4, 2))
        doc = json.loads(spec.to_json())

        def shuffle(value):
            if isinstance(value, dict):
                return {k: shuffle(value[k]) for k in reversed(list(value))}
            return value

        reparsed = MachineSpec.from_dict(shuffle(doc))
        assert reparsed == spec
        assert reparsed.to_json() == spec.to_json()

    def test_degradation_written_down_in_any_order_hashes_equal(self):
        a = frontier_spec().degraded(failed_links=(9, 1, 5))
        b = frontier_spec().degraded(failed_links=(5, 9, 1))
        assert a.to_json() == b.to_json()


class TestCompositionRootGuard:
    def test_no_layer_outside_core_and_fabric_defaults_the_fabric(self):
        """Downstream layers must get configs from the scenario funnel.

        Default-constructing ``DragonflyConfig()`` anywhere else
        reintroduces the scattered-defaults problem this layer removed.
        """
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert src.is_dir()
        offenders = []
        for path in src.rglob("*.py"):
            rel = path.relative_to(src)
            if rel.parts[0] in ("core", "fabric"):
                continue
            if re.search(r"DragonflyConfig\(\)", path.read_text()):
                offenders.append(str(rel))
        assert offenders == []

    def test_no_layer_below_core_names_frontier_classes(self):
        """Everything below the composition root goes through the family
        registry: naming ``FRONTIER_SPEC``/``FrontierMachine``/
        ``BardPeakNode`` in an import hardwires the machine choice and
        breaks Summit/Aurora runs of the same code path.
        """
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert src.is_dir()
        pattern = re.compile(
            r"\b(FRONTIER_SPEC|FrontierMachine|BardPeakNode)\b")
        offenders = []
        for path in src.rglob("*.py"):
            rel = path.relative_to(src)
            # The composition root itself (core, node) and the package
            # facade re-export these names; everyone else must not.
            if rel.parts[0] in ("core", "node") or rel == Path("__init__.py"):
                continue
            for i, line in enumerate(path.read_text().splitlines(), 1):
                if "import" in line and pattern.search(line):
                    offenders.append(f"{rel}:{i}: {line.strip()}")
        assert offenders == []
