"""Table 1 aggregation tests."""

import pytest

from repro.core.specs_table import compute_table1


@pytest.fixture(scope="module")
def table1():
    return compute_table1()


class TestTable1:
    """Each row of the paper's Table 1 against the computed aggregate."""

    def test_nodes(self, table1):
        assert table1["nodes"] == 9472

    def test_fp64_dgemm_2_0_ef(self, table1):
        assert table1["fp64_dgemm_EF"] == pytest.approx(2.0, rel=0.01)

    def test_ddr4_capacity_4_6_pib(self, table1):
        assert table1["ddr4_capacity_PiB"] == pytest.approx(4.6, rel=0.01)

    def test_hbm2e_capacity_4_6_pib(self, table1):
        assert table1["hbm2e_capacity_PiB"] == pytest.approx(4.6, rel=0.01)

    def test_ddr4_bandwidth_1_9(self, table1):
        # the paper prints "1.9 PiB/s"; the SI aggregate is 1.94 PB/s
        assert table1["ddr4_bandwidth_PBps"] == pytest.approx(1.94, rel=0.01)

    def test_hbm2e_bandwidth_123_9(self, table1):
        # the paper prints "123.9 PiB/s"; the SI aggregate is 123.9 PB/s
        assert table1["hbm2e_bandwidth_PBps"] == pytest.approx(123.9,
                                                               rel=0.002)

    def test_injection_100_gbs_per_node(self, table1):
        assert table1["injection_bandwidth_GBps_per_node"] == 100.0

    def test_global_bandwidth_270_tbs(self, table1):
        assert table1["global_bandwidth_TBps"] == pytest.approx(270.1,
                                                                rel=0.001)


class TestDerivedClaims:
    def test_hbm_ddr_ratio_64x(self, table1):
        assert table1["hbm_to_ddr_bw_ratio"] == pytest.approx(64.0, rel=0.01)

    def test_over_500_million_threads(self, table1):
        # §5.3: "provide over 500,000,000 threads"
        assert table1["gpu_threads_millions"] > 500.0

    def test_capacity_symmetry(self, table1):
        # DDR and HBM capacities match by design (512 GiB each per node)
        assert table1["ddr4_capacity_PiB"] == table1["hbm2e_capacity_PiB"]

    def test_scales_with_node_count(self):
        half = compute_table1(nodes=4736)
        full = compute_table1(nodes=9472)
        assert half["hbm2e_capacity_PiB"] == pytest.approx(
            full["hbm2e_capacity_PiB"] / 2)
        # per-node and fabric-level rows do not scale with node count
        assert half["injection_bandwidth_GBps_per_node"] == 100.0
