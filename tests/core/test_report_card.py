"""Section 5 scorecard tests — the paper's four-challenge verdicts."""

import pytest

from repro.core.report_card import ChallengeGrade, ExascaleReportCard


@pytest.fixture(scope="module")
def card():
    return ExascaleReportCard().evaluate()


class TestVerdictsMatchThePaper:
    def test_energy_and_power_passes(self, card):
        # §5.1: "Frontier clearly excels in this area."
        result = card["energy_and_power"]
        assert result.grade is ChallengeGrade.PASS
        assert result.metrics["gflops_per_watt"] > 50
        assert result.metrics["mw_per_exaflop"] < 20

    def test_memory_and_storage_partial(self, card):
        # §5.2: meets applications' needs but not the 1000x resource ask.
        result = card["memory_and_storage"]
        assert result.grade is ChallengeGrade.PARTIAL
        assert not result.metrics["meets_report_1000x"]

    def test_memory_scaling_well_short_of_1000x(self, card):
        m = card["memory_and_storage"].metrics
        assert m["memory_scaling_vs_2008"] < 100
        assert m["storage_scaling_vs_2008"] < 100

    def test_memory_plus_storage_cost_45pct(self, card):
        # "memory and storage claim at least 45% of the system cost"
        m = card["memory_and_storage"].metrics
        assert m["memory_cost_share"] + m["storage_cost_share"] == \
            pytest.approx(0.45)

    def test_concurrency_passes_via_gpus(self, card):
        # §5.3: >500M threads near 1 GHz; GPUs supplied the concurrency.
        result = card["concurrency_and_locality"]
        assert result.grade is ChallengeGrade.PASS
        assert result.metrics["gpu_threads"] > 5e8
        assert result.metrics["via_gpus"]

    def test_resiliency_struggles(self, card):
        # §5.4: "it struggles with the resiliency challenge"
        result = card["resiliency"]
        assert result.grade is ChallengeGrade.STRUGGLE
        assert result.metrics["near_four_hour_target"]
        assert not result.metrics["reaches_terascale_goal"]

    def test_resiliency_names_memory_and_power(self, card):
        leading = card["resiliency"].metrics["leading_contributors"]
        joined = " ".join(leading).lower()
        assert "hbm" in joined or "memory" in joined
        assert "power" in joined


class TestThesis:
    def test_meets_spirit_of_exascale(self):
        # The paper's conclusion: every application beat its KPP, so
        # Frontier "meets the spirit of the exascale definition".
        assert ExascaleReportCard().meets_spirit_of_exascale()
