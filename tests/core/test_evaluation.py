"""Full-evaluation driver tests (everything in one sweep)."""

import pytest

from repro.core.evaluation import run_full_evaluation, table6, table7


@pytest.fixture(scope="module")
def evaluation():
    return run_full_evaluation(mpigraph_samples=1)


class TestCompleteness:
    def test_every_table_and_figure_present(self, evaluation):
        for key in ("table1", "table2", "table3", "table4", "table5",
                    "table6", "table7", "figure3", "figure4", "figure5",
                    "figure6", "alltoall", "storage_4_3", "section5",
                    "weak_scaling", "energy_to_solution", "cost"):
            assert key in evaluation

    def test_table_rows_complete(self, evaluation):
        assert len(evaluation["table3"]) == 4      # Copy/Scale/Add/Triad
        assert len(evaluation["table4"]) == 5      # + Mul/Dot naming
        assert len(evaluation["table6"]) == 6
        assert len(evaluation["table7"]) == 5
        assert len(evaluation["table2"]) == 3      # three Orion tiers

    def test_every_kpp_met(self, evaluation):
        for row in evaluation["table6"] + evaluation["table7"]:
            assert row["met"], f"{row['application']} missed its KPP"

    def test_section5_grades(self, evaluation):
        grades = {k: v["grade"] for k, v in evaluation["section5"].items()}
        assert grades == {
            "energy_and_power": "pass",
            "memory_and_storage": "partial",
            "concurrency_and_locality": "pass",
            "resiliency": "struggle",
        }

    def test_spirit_flag(self, evaluation):
        assert evaluation["meets_spirit_of_exascale"] is True

    def test_weak_scaling_section(self, evaluation):
        ws = evaluation["weak_scaling"]
        assert ws["PIConGPU@9216"] == pytest.approx(0.90, abs=0.02)
        assert ws["AthenaPK-Summit@4600"] == pytest.approx(0.48, abs=0.03)

    def test_energy_section(self, evaluation):
        assert all(v > 1.0 for v in evaluation["energy_to_solution"].values())

    def test_cost_section(self, evaluation):
        assert evaluation["cost"]["implied_power_cap_mw"] == pytest.approx(20.0)
        assert evaluation["cost"]["frontier_meets_rule"]


class TestShapeClaims:
    def test_figure6_shape(self, evaluation):
        fig6 = evaluation["figure6"]
        assert fig6["frontier"]["min_gbs"] < fig6["summit"]["min_gbs"]
        assert fig6["frontier"]["max_gbs"] > fig6["summit"]["max_gbs"]
        assert fig6["frontier"]["mass_above_15"] == pytest.approx(0.014,
                                                                  abs=0.005)

    def test_alltoall_in_band(self, evaluation):
        assert 28 <= evaluation["alltoall"]["per_node_gbs"] <= 33

    def test_gpcnet_8ppn_ideal(self, evaluation):
        impact = evaluation["table5"]["8ppn"]["impact"]
        for metrics in impact.values():
            assert metrics["avg"] == pytest.approx(1.0, abs=0.06)

    def test_storage_rows(self, evaluation):
        s = evaluation["storage_4_3"]
        assert s["node_read_gbs"] == pytest.approx(7.1, rel=0.03)
        assert s["ingest_700tib_s"] == pytest.approx(180.0, rel=0.03)


class TestStandaloneTables:
    def test_table6_function(self):
        rows = table6()
        assert rows[0]["application"] == "CoMet"
        assert all(r["baseline"] == "Summit" for r in rows)

    def test_table7_function(self):
        rows = table7()
        assert {r["baseline"] for r in rows} == {"Cori", "Theta", "Mira",
                                                 "Titan"}
