"""Programming environment catalogue tests (§3.4.3)."""

import pytest

from repro.errors import ConfigurationError
from repro.software.environment import (Language, ProgrammingModel, Stack,
                                        frontier_environment)


@pytest.fixture(scope="module")
def env():
    return frontier_environment()


class TestCompilerMatrix:
    def test_two_vendor_stacks_plus_olcf(self, env):
        stacks = {c.stack for c in env.compilers}
        assert stacks == {Stack.CPE, Stack.ROCM, Stack.OLCF}

    def test_cxx_compilers_are_llvm_based(self, env):
        # "The C and C++ compilers in both stacks are based on ... LLVM"
        for c in env.compilers:
            if (Language.CXX in c.languages and c.stack is not Stack.OLCF
                    and Language.FORTRAN not in c.languages):
                assert c.llvm_based

    def test_cray_fortran_is_not_llvm(self, env):
        assert not env.compiler("cray-ftn").llvm_based

    def test_cray_fortran_openmp_matches_cray_cxx(self, env):
        # "comparable support for OpenMP to their C/C++ compilers"
        assert (env.compiler("cray-ftn").openmp_offload_version()
                == env.compiler("cray-cc/CC").openmp_offload_version())

    def test_rocm_fortran_lags_on_openmp(self, env):
        # "'classic' Flang ... lags in the implementation of OpenMP"
        assert (env.compiler("amdflang (classic)").openmp_offload_version()
                < env.compiler("amdclang").openmp_offload_version())

    def test_unknown_compiler_raises(self, env):
        with pytest.raises(ConfigurationError):
            env.compiler("nvcc")


class TestProgrammingModels:
    def test_hip_is_the_low_level_model(self, env):
        assert env.low_level_gpu_model() is ProgrammingModel.HIP

    def test_openmp_is_the_leading_portable_model(self, env):
        assert env.leading_portable_model() is ProgrammingModel.OPENMP_OFFLOAD
        assert len(env.compilers_for(ProgrammingModel.OPENMP_OFFLOAD)) >= 4

    def test_no_vendor_openacc_commitment(self, env):
        # Cray Fortran is stuck on OpenACC 2.0 (2013); only OLCF's gcc
        # carries a current-ish 2.6.
        assert not env.vendor_openacc_commitment()
        gcc = env.compiler("gcc/gfortran")
        assert gcc.supports[ProgrammingModel.OPENACC] == "2.6"

    def test_sycl_pilot_exists(self, env):
        sycl = env.compilers_for(ProgrammingModel.SYCL)
        assert len(sycl) == 1
        assert sycl[0].stack is Stack.OLCF


class TestLibrariesAndTools:
    def test_hip_libraries_shim_onto_roc(self, env):
        # "'hip'-branded libraries are thin compatibility layers"
        for lib in env.libraries:
            if lib.name.startswith("hip"):
                assert lib.is_compatibility_shim
                assert lib.backend.startswith("roc")

    def test_every_math_domain_covered(self, env):
        for domain in ("BLAS", "FFT", "LAPACK"):
            assert env.libraries_in(domain)

    def test_debuggers_from_all_stacks(self, env):
        debuggers = env.tools_for("debugger")
        assert {t.stack for t in debuggers} == {Stack.CPE, Stack.ROCM,
                                                Stack.OLCF}

    def test_rocprof_is_the_rocm_profiler(self, env):
        assert any(t.name == "rocprof" for t in env.tools_for("profiler"))
