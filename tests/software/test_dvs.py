"""DVS caching/forwarding layer tests (§3.4.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.software.dvs import DvsLayer
from repro.units import GiB


@pytest.fixture()
def dvs() -> DvsLayer:
    return DvsLayer()


class TestStampede:
    def test_dvs_absorbs_the_job_start_stampede(self, dvs):
        # 9,408 nodes loading a 2 GiB software stack each: the filer alone
        # would take hours; the caching tier makes it minutes.
        speedup = dvs.stampede_speedup(9408, 2 * GiB)
        assert speedup > 10.0

    def test_single_node_gains_little(self, dvs):
        assert dvs.stampede_speedup(1, 2 * GiB) < 3.0

    def test_speedup_grows_then_saturates(self, dvs):
        # grows while the cold fetch amortises, then plateaus where the
        # cache tier itself becomes the limit (~30x with these rates)
        small = dvs.stampede_speedup(16, 1 * GiB)
        mid = dvs.stampede_speedup(256, 1 * GiB)
        big = dvs.stampede_speedup(4096, 1 * GiB)
        assert small < mid
        assert big == pytest.approx(mid, rel=0.05)

    def test_perfect_cache_is_backend_free_after_cold_fetch(self):
        perfect = DvsLayer(cache_hit_ratio=1.0)
        t = perfect.job_start_time(1000, 1 * GiB)
        # backend only sees the one cold copy
        cold = 1 * GiB / perfect.nfs_backend_bandwidth
        cache = 999 * GiB / perfect.cache_bandwidth
        assert t == pytest.approx(max(cold, cache))

    def test_no_cache_hits_no_help(self):
        useless = DvsLayer(cache_hit_ratio=0.0)
        assert useless.stampede_speedup(1000, 1 * GiB) < 1.1


class TestValidation:
    def test_twelve_servers_default(self, dvs):
        # "twelve dedicated nodes that run Data Virtualization Services"
        assert dvs.servers == 12

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            DvsLayer(servers=0)
        with pytest.raises(ConfigurationError):
            DvsLayer(cache_hit_ratio=1.5)
        with pytest.raises(ConfigurationError):
            DvsLayer().job_start_time(0, 1.0)
