"""Fabric Manager tests — failure discovery and rerouting (§3.4.2)."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.fabric.dragonfly import DragonflyConfig
from repro.fabric.network import SlingshotNetwork
from repro.fabric.topology import LinkKind
from repro.software.fabric_manager import FabricManager


@pytest.fixture()
def managed():
    net = SlingshotNetwork(DragonflyConfig().scaled(6, 4, 3), rng=1)
    fm = FabricManager(net)
    fm.boot()
    return net, fm


def _bundle_switch_pairs(net, g_a: int, g_b: int) -> set[tuple[int, int]]:
    pairs = set()
    for link in net.topology.links:
        if link.kind is LinkKind.L2:
            ga = net.topology.group_of_switch(link.src[1])
            gb = net.topology.group_of_switch(link.dst[1])
            if {ga, gb} == {g_a, g_b}:
                pairs.add((min(link.src[1], link.dst[1]),
                           max(link.src[1], link.dst[1])))
    return pairs


class TestBoot:
    def test_boot_configures_every_switch(self, managed):
        net, fm = managed
        assert fm.configured
        assert fm.routes_pushed == net.topology.n_switches

    def test_double_boot_rejected(self, managed):
        _, fm = managed
        with pytest.raises(ConfigurationError):
            fm.boot()

    def test_sweep_before_boot_rejected(self):
        net = SlingshotNetwork(DragonflyConfig().scaled(4, 2, 2))
        with pytest.raises(ConfigurationError):
            FabricManager(net).sweep()


class TestFailureHandling:
    def test_sweep_discovers_and_reroutes(self, managed):
        net, fm = managed
        pairs = _bundle_switch_pairs(net, 0, 1)
        for a, b in pairs:
            fm.fail_cable(a, b)
        handled = fm.sweep()
        assert handled == 2 * len(pairs)   # both directions of each cable
        assert fm.fabric_is_routable()

    def test_traffic_detours_after_bundle_loss(self, managed):
        net, fm = managed
        for a, b in _bundle_switch_pairs(net, 0, 1):
            fm.fail_cable(a, b)
        fm.sweep()
        path = net.router.path(0, net.config.endpoints_per_group + 1,
                               register=False)
        # no direct lanes remain: the route must take two global hops
        assert net.router.global_hops(path) == 2
        assert not any(i in net.router.disabled for i in path)

    def test_partial_bundle_loss_uses_surviving_lane(self):
        # At bundle width 2, killing one lane leaves a direct lane in use.
        cfg = DragonflyConfig().scaled(4, 4, 4)
        assert cfg.global_links_per_pair >= 2
        net = SlingshotNetwork(cfg, rng=2)
        fm = FabricManager(net)
        fm.boot()
        pairs = sorted(_bundle_switch_pairs(net, 0, 1))
        fm.fail_cable(*pairs[0])
        fm.sweep()
        path = net.router.path(0, net.config.endpoints_per_group,
                               register=False)
        assert net.router.global_hops(path) == 1

    def test_degraded_capacity_accounting(self, managed):
        net, fm = managed
        pairs = _bundle_switch_pairs(net, 0, 1)
        for a, b in pairs:
            fm.fail_cable(a, b)
        fm.sweep()
        expected = len(pairs) / (net.config.groups
                                 * (net.config.groups - 1) / 2
                                 * net.config.global_links_per_pair)
        assert fm.degraded_global_capacity() == pytest.approx(expected,
                                                              rel=0.01)

    def test_restore_returns_to_minimal_routing(self, managed):
        net, fm = managed
        pairs = _bundle_switch_pairs(net, 0, 1)
        for a, b in pairs:
            fm.fail_cable(a, b)
        fm.sweep()
        for a, b in pairs:
            fm.restore_cable(a, b)
        path = net.router.path(0, net.config.endpoints_per_group + 1,
                               register=False)
        assert net.router.global_hops(path) == 1
        assert fm.degraded_global_capacity() == 0.0

    def test_unknown_cable_rejected(self, managed):
        _, fm = managed
        with pytest.raises(TopologyError):
            fm.fail_cable(0, 0)

    def test_sweep_counter(self, managed):
        _, fm = managed
        fm.sweep()
        fm.sweep()
        assert fm.sweeps_performed == 2


class TestLocalLinkFailure:
    def test_l1_failure_routes_via_intermediate_switch(self, managed):
        net, fm = managed
        # kill the direct L1 between switches 0 and 1 (group 0)
        fm.fail_cable(0, 1)
        fm.sweep()
        eps = net.config.endpoints_per_switch
        path = net.router.path(0, eps, register=False)   # sw0 -> sw1
        # two L1 hops via a third switch in the group
        assert net.router.switch_hops(path) == 2
        assert net.router.global_hops(path) == 0
