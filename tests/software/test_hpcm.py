"""HPCM system-management tests (§3.4.2)."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.software.hpcm import HpcmCluster


@pytest.fixture()
def cluster() -> HpcmCluster:
    return HpcmCluster(n_leaders=5, n_compute=100)


class TestFailover:
    def test_all_clients_served_initially(self, cluster):
        assert cluster.all_clients_served()

    def test_leader_failure_is_transparent(self, cluster):
        # "Leader-node failure is transparently handled by HPCM's CTDB
        # implementation — another leader node takes over the virtual IP"
        victim_clients = set(cluster.leaders[2].clients)
        cluster.fail_leader(2)
        assert cluster.all_clients_served()
        for node in list(victim_clients)[:5]:
            assert cluster.serving_leader(node).alive

    def test_takeover_prefers_least_loaded(self, cluster):
        cluster.fail_leader(0)
        loads = [len(leader.clients) for leader in cluster.leaders if leader.alive]
        assert max(loads) - min(loads) <= 25   # roughly balanced

    def test_cascading_failures_until_one_survives(self, cluster):
        for i in range(4):
            cluster.fail_leader(i)
            assert cluster.all_clients_served()
        with pytest.raises(SimulationError):
            cluster.fail_leader(4)   # nobody left to take over

    def test_recovery_reclaims_home_vip(self, cluster):
        cluster.fail_leader(1)
        cluster.recover_leader(1)
        assert cluster.vip_owner[cluster.leaders[1].virtual_ip] == 1
        assert cluster.all_clients_served()

    def test_double_failure_rejected(self, cluster):
        cluster.fail_leader(1)
        with pytest.raises(SimulationError):
            cluster.fail_leader(1)

    def test_recover_alive_rejected(self, cluster):
        with pytest.raises(SimulationError):
            cluster.recover_leader(0)


class TestDiscovery:
    def test_sweep_detects_changes(self, cluster):
        changed = cluster.discovery_sweep({1: {"dimm": "64GiB"},
                                           2: {"dimm": "64GiB"}})
        assert changed == [1, 2]
        # unchanged report: nothing to do
        assert cluster.discovery_sweep({1: {"dimm": "64GiB"}}) == []
        # maintenance swap noticed without human intervention
        assert cluster.discovery_sweep({1: {"dimm": "128GiB"}}) == [1]


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            HpcmCluster(n_leaders=0)

    def test_unknown_node(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.serving_leader(1000)

    def test_frontier_defaults(self):
        c = HpcmCluster()
        # "One admin node and twenty-one leader nodes"
        assert c.n_leaders == 21
        assert c.n_compute == 9472
