"""Cross-module integration tests.

Each test exercises a realistic workflow spanning several subsystems, the
way a downstream user of the library would.
"""

import pytest

from repro import FrontierMachine
from repro.apps import all_apps
from repro.fabric.dragonfly import DragonflyConfig
from repro.fabric.network import SlingshotNetwork
from repro.microbench.mpigraph import simulate_mpigraph
from repro.mpi.job import JobLayout
from repro.mpi.simmpi import SimComm
from repro.resilience.checkpoint import CheckpointPlan
from repro.resilience.mtti import MttiModel
from repro.scheduler.placement import allocation_stats
from repro.scheduler.slurm import JobRequest, JobState
from repro.storage.iosim import CheckpointScenario


class TestMachineToScheduler:
    def test_fill_machine_with_jobs_and_drain(self):
        machine = FrontierMachine(node_count=512)
        sched = machine.scheduler()
        ids = [sched.submit(JobRequest(128, 60.0)) for _ in range(5)]
        running = [j for j in ids if sched.job(j).state is JobState.RUNNING]
        assert len(running) == 4        # 4 x 128 nodes fills the machine
        sched.run_until_idle()
        assert all(sched.job(j).state is JobState.COMPLETED for j in ids)

    def test_placement_feeds_network_analysis(self):
        machine = FrontierMachine(node_count=1024)
        sched = machine.scheduler()
        jid = sched.submit(JobRequest(96, 10.0))
        stats = allocation_stats(sched.job(jid).nodes, machine.fabric)
        assert stats.is_single_group  # packed: all traffic stays local


class TestFabricToMpi:
    def test_job_layout_endpoints_exist_in_fabric(self):
        cfg = DragonflyConfig().scaled(6, 4, 4)
        net = SlingshotNetwork(cfg)
        nodes = cfg.total_endpoints // 4
        layout = JobLayout.contiguous(nodes, ppn=8)
        endpoints = set(layout.endpoints())
        assert max(endpoints) < cfg.total_endpoints
        # run a real flow allocation over the job's rank pairs
        pairs = layout.pair_endpoints([(0, layout.n_ranks // 2)])
        flows, _ = net.flow_bandwidths(pairs)
        assert flows[0].bandwidth > 0

    def test_mpigraph_over_materialised_fabric(self, small_network):
        hist = simulate_mpigraph(small_network, offsets=[1, 16, 48])
        assert hist.bandwidths.size == 3 * small_network.config.total_endpoints

    def test_simcomm_consistent_with_fabric_constants(self):
        comm = SimComm(JobLayout.contiguous(9408, ppn=8))
        bw = comm.effective_bandwidth(0, 5000 * 8, 1 << 30)
        assert bw <= 12.5e9 * 1.001     # half a NIC at 8 PPN


class TestResilienceToStorage:
    def test_end_to_end_checkpoint_strategy(self):
        """MTTI from FIT inventory + checkpoint cost from storage models
        gives a plan whose overhead matches the paper's <5% I/O budget."""
        scenario = CheckpointScenario()
        mtti_s = MttiModel.frontier().system_mtti_hours * 3600
        plan = CheckpointPlan(checkpoint_cost_s=scenario.burst_time,
                              mtti_s=mtti_s)
        assert plan.efficiency_at_optimum > 0.9
        overhead = scenario.burst_time / plan.daly_interval_s
        assert overhead < 0.05

    def test_full_machine_job_needs_checkpointing(self):
        model = MttiModel.frontier()
        p = model.job_interrupt_probability(9472, hours=24.0)
        assert p > 0.9  # a day-long full-machine run will be interrupted


class TestAppsOnTheMachine:
    def test_every_app_meets_kpp_and_runs_its_kernel(self):
        for app in all_apps():
            assert app.kpp_result().met
            metrics = app.run_kernel(scale=0.2)
            assert metrics["fom"] > 0

    def test_speedups_scale_down_with_partial_machines(self):
        """Projected speedup on half of Frontier is roughly half (for
        device-ratio-dominated apps), still beating the CAAR target."""
        from repro.apps.cholla import Cholla
        from repro.core.baselines import FRONTIER, MachineModel
        half = MachineModel(
            name="HalfFrontier", year=2022, nodes=4736, gpus_per_node=8,
            fp64_per_gpu=FRONTIER.fp64_per_gpu,
            fp64_per_node_cpu=FRONTIER.fp64_per_node_cpu,
            memory_per_node=FRONTIER.memory_per_node,
            node_injection=FRONTIER.node_injection, power_mw=10.5)
        full = Cholla().speedup()
        partial = Cholla().speedup(half)
        assert partial == pytest.approx(full / 2, rel=0.01)
        assert partial > 4.0


class TestWholePaper:
    def test_the_spirit_of_exascale(self):
        """The paper's closing argument, end to end: power PASS,
        concurrency PASS, storage adequate, resiliency hard — and every
        application KPP exceeded."""
        from repro.core.report_card import ChallengeGrade, ExascaleReportCard
        card = ExascaleReportCard()
        results = card.evaluate()
        assert results["energy_and_power"].grade is ChallengeGrade.PASS
        assert results["concurrency_and_locality"].grade is ChallengeGrade.PASS
        assert results["resiliency"].grade is ChallengeGrade.STRUGGLE
        assert card.meets_spirit_of_exascale()
