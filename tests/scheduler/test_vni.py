"""VNI allocation tests (per-jobstep isolation)."""

import pytest

from repro.errors import SchedulerError
from repro.scheduler.vni import VniAllocator


class TestAllocation:
    def test_unique_vnis(self):
        alloc = VniAllocator()
        vnis = [alloc.allocate(f"job{i}") for i in range(100)]
        assert len(set(vnis)) == 100

    def test_isolation_predicate(self):
        alloc = VniAllocator()
        a = alloc.allocate("a")
        b = alloc.allocate("b")
        assert alloc.isolated(a, b)
        assert not alloc.isolated(a, a)

    def test_release_and_reuse(self):
        alloc = VniAllocator(low=1, high=2)
        a = alloc.allocate("a")
        b = alloc.allocate("b")
        alloc.release(a)
        c = alloc.allocate("c")
        assert c == a
        assert alloc.live_count == 2

    def test_exhaustion(self):
        alloc = VniAllocator(low=1, high=3)
        for i in range(3):
            alloc.allocate(f"j{i}")
        with pytest.raises(SchedulerError):
            alloc.allocate("overflow")

    def test_owner_tracking(self):
        alloc = VniAllocator()
        v = alloc.allocate("step-1.0")
        assert alloc.owner(v) == "step-1.0"

    def test_double_release_rejected(self):
        alloc = VniAllocator()
        v = alloc.allocate("x")
        alloc.release(v)
        with pytest.raises(SchedulerError):
            alloc.release(v)

    def test_unknown_owner_rejected(self):
        alloc = VniAllocator()
        with pytest.raises(SchedulerError):
            alloc.owner(9)

    def test_invalid_range(self):
        with pytest.raises(SchedulerError):
            VniAllocator(low=0, high=10)
        with pytest.raises(SchedulerError):
            VniAllocator(low=10, high=5)

    def test_capacity(self):
        assert VniAllocator(low=1, high=65535).capacity == 65535
