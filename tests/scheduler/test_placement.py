"""Topology-aware placement tests (§3.4.2's pack-small / spread-large)."""

import pytest

from repro.errors import PlacementError
from repro.scheduler.placement import (NODES_PER_GROUP, PlacementPolicy,
                                       allocation_stats, place_job)


def free_machine(nodes: int = 1024) -> set[int]:
    return set(range(nodes))


class TestAutoPolicy:
    def test_small_job_packs_into_one_group(self):
        # "For small jobs able to fit within a single rack/group, Slurm
        # will pack allocations tightly to minimize global hops."
        nodes = place_job(64, free_machine())
        stats = allocation_stats(nodes)
        assert stats.groups_spanned == 1
        assert stats.intra_group_fraction == 1.0

    def test_large_job_spreads_across_groups(self):
        # "For larger jobs, Slurm will attempt to spread a job evenly
        # across as many Slingshot groups as possible"
        nodes = place_job(512, free_machine())
        stats = allocation_stats(nodes)
        assert stats.groups_spanned == 8   # every group of the 1024-node box
        assert stats.max_nodes_in_group == 64

    def test_boundary_at_group_size(self):
        packed = place_job(NODES_PER_GROUP, free_machine())
        assert allocation_stats(packed).groups_spanned == 1
        spread = place_job(NODES_PER_GROUP + 1, free_machine())
        assert allocation_stats(spread).groups_spanned > 1


class TestExplicitPolicies:
    def test_pack_tightest_fit(self):
        free = set(range(0, 64)) | set(range(128, 140))  # group0: 64, group1: 12
        nodes = place_job(10, free, PlacementPolicy.PACK)
        # tightest fit: the 12-node fragment, not the big group
        assert all(128 <= n < 140 for n in nodes)

    def test_pack_spills_when_no_single_group_fits(self):
        free = set(range(0, 20)) | set(range(128, 148))
        nodes = place_job(30, free, PlacementPolicy.PACK)
        assert allocation_stats(nodes).groups_spanned == 2

    def test_spread_round_robins(self):
        nodes = place_job(8, free_machine(4 * NODES_PER_GROUP),
                          PlacementPolicy.SPREAD)
        stats = allocation_stats(nodes)
        assert stats.groups_spanned == 4
        assert stats.max_nodes_in_group == 2

    def test_spread_more_global_bandwidth_per_node(self):
        free = free_machine(8 * NODES_PER_GROUP)
        packed = allocation_stats(place_job(256, free, PlacementPolicy.PACK))
        spread = allocation_stats(place_job(256, free, PlacementPolicy.SPREAD))
        assert (spread.global_bandwidth_per_node
                > packed.global_bandwidth_per_node)


class TestValidation:
    def test_too_many_nodes(self):
        with pytest.raises(PlacementError):
            place_job(100, free_machine(50))

    def test_zero_nodes(self):
        with pytest.raises(PlacementError):
            place_job(0, free_machine())

    def test_empty_allocation_stats(self):
        with pytest.raises(PlacementError):
            allocation_stats([])

    def test_single_node_stats(self):
        stats = allocation_stats([7])
        assert stats.groups_spanned == 1
        assert stats.is_single_group
        assert stats.intra_group_fraction == 1.0

    def test_result_is_sorted_unique(self):
        nodes = place_job(100, free_machine())
        assert nodes == sorted(set(nodes))
