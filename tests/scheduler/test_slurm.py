"""Slurm scheduler tests: exclusivity, checknode gating, job lifecycle."""

import pytest

from repro.errors import SchedulerError
from repro.scheduler.placement import PlacementPolicy
from repro.scheduler.slurm import JobRequest, JobState, SlurmScheduler
from repro.scheduler.slurm import NodeState


def scheduler(n: int = 256, checknode=None) -> SlurmScheduler:
    return SlurmScheduler(n_nodes=n, checknode=checknode)


class TestExclusivity:
    def test_nodes_are_exclusive_to_one_job(self):
        # "Compute nodes are scheduled exclusively to a single job"
        s = scheduler(256)
        j1 = s.submit(JobRequest(200, 100.0))
        j2 = s.submit(JobRequest(100, 100.0))
        assert s.job(j1).state is JobState.RUNNING
        assert s.job(j2).state is JobState.PENDING
        assert not set(s.job(j1).nodes) & s.free_nodes

    def test_queued_job_starts_on_completion(self):
        s = scheduler(256)
        s.submit(JobRequest(200, 10.0))
        j2 = s.submit(JobRequest(100, 10.0))
        s.step()
        assert s.job(j2).state is JobState.RUNNING

    def test_backfill_small_job_jumps_queue(self):
        s = scheduler(256)
        s.submit(JobRequest(200, 100.0, name="big1"))
        j_big2 = s.submit(JobRequest(220, 100.0, name="big2"))  # blocks
        j_small = s.submit(JobRequest(40, 1.0, name="small"))
        assert s.job(j_big2).state is JobState.PENDING
        assert s.job(j_small).state is JobState.RUNNING


class TestChecknode:
    def test_unhealthy_nodes_drained_at_boot(self):
        s = scheduler(64, checknode=lambda n: n != 5)
        assert 5 in s.drained_nodes
        assert s.node_state(5) is NodeState.DRAIN

    def test_checknode_runs_between_jobs(self):
        # "At boot and between every job, Slurm runs a checknode script"
        sick = set()
        s = scheduler(64, checknode=lambda n: n not in sick)
        j = s.submit(JobRequest(8, 5.0))
        sick.add(s.job(j).nodes[0])    # node breaks during the job
        s.run_until_idle()
        assert s.job(j).state is JobState.COMPLETED
        assert s.job(j).nodes[0] in s.drained_nodes

    def test_drained_node_not_allocated(self):
        s = scheduler(16, checknode=lambda n: n != 0)
        j = s.submit(JobRequest(15, 1.0))
        assert 0 not in s.job(j).nodes

    def test_resume_reruns_checknode(self):
        sick = {3}
        s = scheduler(16, checknode=lambda n: n not in sick)
        assert 3 in s.drained_nodes
        sick.clear()
        s.resume(3)
        assert 3 in s.free_nodes


class TestJobSteps:
    def test_steps_get_unique_vnis(self):
        # "Slurm integrates with the Slingshot software to allocate a
        # unique Virtual Network Identifier (VNI) per jobstep"
        s = scheduler(64)
        j1 = s.submit(JobRequest(8, 10.0))
        j2 = s.submit(JobRequest(8, 10.0))
        vnis = [s.start_step(j1), s.start_step(j1), s.start_step(j2)]
        assert len(set(vnis)) == 3

    def test_vnis_released_at_completion(self):
        s = scheduler(64)
        j = s.submit(JobRequest(8, 5.0))
        s.start_step(j)
        assert s.vni.live_count == 1
        s.run_until_idle()
        assert s.vni.live_count == 0

    def test_step_on_pending_job_rejected(self):
        s = scheduler(16)
        s.submit(JobRequest(16, 10.0))
        j2 = s.submit(JobRequest(16, 10.0))
        with pytest.raises(SchedulerError):
            s.start_step(j2)


class TestLifecycle:
    def test_time_advances_to_completions(self):
        s = scheduler(64)
        s.submit(JobRequest(8, 30.0))
        s.submit(JobRequest(8, 10.0))
        assert s.step() == 10.0
        assert s.step() == 30.0

    def test_cancel_pending(self):
        s = scheduler(16)
        s.submit(JobRequest(16, 10.0))
        j2 = s.submit(JobRequest(16, 10.0))
        s.cancel(j2)
        assert s.job(j2).state is JobState.CANCELLED

    def test_cancel_running_frees_nodes(self):
        s = scheduler(16)
        j = s.submit(JobRequest(16, 10.0))
        s.cancel(j)
        assert len(s.free_nodes) == 16

    def test_cancel_finished_rejected(self):
        s = scheduler(16)
        j = s.submit(JobRequest(4, 1.0))
        s.run_until_idle()
        with pytest.raises(SchedulerError):
            s.cancel(j)

    def test_oversized_job_rejected(self):
        s = scheduler(16)
        with pytest.raises(SchedulerError):
            s.submit(JobRequest(17, 1.0))

    def test_invalid_request(self):
        with pytest.raises(SchedulerError):
            JobRequest(0, 1.0)
        with pytest.raises(SchedulerError):
            JobRequest(1, 0.0)

    def test_placement_policy_respected(self):
        s = scheduler(512)
        j = s.submit(JobRequest(64, 10.0, policy=PlacementPolicy.SPREAD))
        from repro.scheduler.placement import allocation_stats
        assert allocation_stats(s.job(j).nodes).groups_spanned == 4

    def test_drain_allocated_node_rejected(self):
        s = scheduler(16)
        j = s.submit(JobRequest(16, 10.0))
        with pytest.raises(SchedulerError):
            s.drain(s.job(j).nodes[0])


class TestFailNode:
    """fail_node / resume: the chaos engine's interrupt-and-repair path."""

    def test_failing_an_allocated_node_interrupts_its_job(self):
        s = scheduler(16)
        j = s.submit(JobRequest(8, 100.0))
        victim = s.job(j).nodes[0]
        assert s.fail_node(victim) == j
        assert s.job(j).state is JobState.CANCELLED
        assert s.node_state(victim) is NodeState.DRAIN

    def test_failing_an_idle_node_just_drains_it(self):
        s = scheduler(16)
        assert s.fail_node(15) is None
        assert s.node_state(15) is NodeState.DRAIN

    def test_backfill_never_lands_on_the_dead_node(self):
        """The drain must happen before the cancel frees capacity."""
        s = scheduler(16)
        j1 = s.submit(JobRequest(16, 100.0))
        j2 = s.submit(JobRequest(16, 100.0))
        s.fail_node(0)
        assert s.job(j1).state is JobState.CANCELLED
        assert s.job(j2).state is JobState.PENDING   # only 15 nodes left
        j3 = s.submit(JobRequest(15, 100.0))
        assert s.job(j3).state is JobState.RUNNING
        assert 0 not in s.job(j3).nodes

    def test_surviving_nodes_regate_through_checknode(self):
        sick = set()
        s = scheduler(16, checknode=lambda n: n not in sick)
        j = s.submit(JobRequest(8, 100.0))
        a, b = s.job(j).nodes[:2]
        sick.update({a, b})
        s.fail_node(a)
        # co-victim b was caught by the between-jobs checknode sweep
        assert s.node_state(b) is NodeState.DRAIN
        assert len(s.free_nodes) == 16 - 8 + 6

    def test_resume_restarts_the_queue(self):
        s = scheduler(16)
        s.fail_node(0)
        j = s.submit(JobRequest(16, 10.0))
        assert s.job(j).state is JobState.PENDING
        s.resume(0)
        assert s.job(j).state is JobState.RUNNING

    def test_resume_of_still_sick_node_stays_drained(self):
        sick = {0}
        s = scheduler(16, checknode=lambda n: n not in sick)
        s.resume(0)
        assert s.node_state(0) is NodeState.DRAIN
        sick.clear()
        s.resume(0)
        assert 0 in s.free_nodes


class TestFailureIdempotence:
    """Overlapping blasts and racing repairs must not corrupt state."""

    def test_double_fail_is_a_no_op(self):
        s = scheduler(16)
        j = s.submit(JobRequest(8, 100.0))
        victim = s.job(j).nodes[0]
        assert s.fail_node(victim) == j
        # second blast hits the same (now drained) node: nothing happens
        assert s.fail_node(victim) is None
        assert s.node_state(victim) is NodeState.DRAIN
        assert s.job(j).state is JobState.CANCELLED

    def test_fail_while_drained_does_not_cancel_the_new_owner(self):
        """A node drained between jobs must not take down its ex-job."""
        s = scheduler(16)
        s.fail_node(0)
        j = s.submit(JobRequest(15, 100.0))
        assert s.fail_node(0) is None
        assert s.job(j).state is JobState.RUNNING

    def test_resume_of_never_failed_node_is_a_no_op(self):
        s = scheduler(16)
        s.resume(5)           # idle, never drained: idempotent no-op
        assert 5 in s.free_nodes
        j = s.submit(JobRequest(4, 100.0))
        assert s.job(j).state is JobState.RUNNING

    def test_resume_of_allocated_node_is_a_caller_bug(self):
        s = scheduler(16)
        j = s.submit(JobRequest(8, 100.0))
        with pytest.raises(SchedulerError):
            s.resume(s.job(j).nodes[0])

    def test_resume_of_reserved_node_is_a_caller_bug(self):
        s = scheduler(16)
        s.reserve_spare(15)
        with pytest.raises(SchedulerError):
            s.resume(15)

    def test_overlapping_blast_radius_counts_each_node_once(self):
        s = scheduler(16)
        j = s.submit(JobRequest(8, 100.0))
        a, b = s.job(j).nodes[:2]
        # one event kills both; a replayed/overlapping event re-hits them
        assert s.fail_node(a) == j
        assert s.fail_node(b) is None    # job already cancelled
        assert s.fail_node(a) is None
        assert s.node_state(a) is NodeState.DRAIN
        assert s.node_state(b) is NodeState.DRAIN


class TestSparePool:
    """The heal layer's scheduler face: reserve / replace / replenish."""

    def test_reserve_takes_the_node_out_of_placement(self):
        s = scheduler(16)
        s.reserve_spare(15)
        assert s.spare_nodes == {15}
        j = s.submit(JobRequest(15, 100.0))
        assert s.job(j).state is JobState.RUNNING
        assert 15 not in s.job(j).nodes

    def test_reserve_of_non_idle_node_rejected(self):
        s = scheduler(16)
        j = s.submit(JobRequest(8, 100.0))
        with pytest.raises(SchedulerError):
            s.reserve_spare(s.job(j).nodes[0])
        s.drain(15)
        with pytest.raises(SchedulerError):
            s.reserve_spare(15)

    def test_release_returns_the_spare_through_checknode(self):
        sick = set()
        s = scheduler(16, checknode=lambda n: n not in sick)
        s.reserve_spare(15)
        s.reserve_spare(14)
        sick.add(14)
        s.release_spare(15)
        s.release_spare(14)
        assert 15 in s.free_nodes
        assert s.node_state(14) is NodeState.DRAIN

    def test_replace_node_swaps_the_spare_into_the_job(self):
        s = scheduler(16)
        s.reserve_spare(15)
        j = s.submit(JobRequest(8, 100.0))
        dead = s.job(j).nodes[0]
        assert s.replace_node(dead, 15) == j
        # the job never left RUNNING; the dead node drained
        assert s.job(j).state is JobState.RUNNING
        assert 15 in s.job(j).nodes
        assert dead not in s.job(j).nodes
        assert s.node_state(dead) is NodeState.DRAIN
        assert s.node_state(15) is NodeState.ALLOCATED

    def test_replace_requires_a_reserved_spare_and_a_running_job(self):
        s = scheduler(16)
        j = s.submit(JobRequest(8, 100.0))
        dead = s.job(j).nodes[0]
        with pytest.raises(SchedulerError):
            s.replace_node(dead, 15)     # 15 is idle, not reserved
        s.reserve_spare(15)
        idle = next(iter(s.free_nodes))
        with pytest.raises(SchedulerError):
            s.replace_node(idle, 15)     # no running job on the victim

    def test_resume_to_spare_replenishes_without_placement(self):
        s = scheduler(16)
        s.fail_node(15)
        j = s.submit(JobRequest(16, 100.0))
        assert s.job(j).state is JobState.PENDING
        assert s.resume_to_spare(15) is True
        # the repaired node went to the pool, NOT to the pending job
        assert s.node_state(15) is NodeState.RESERVED
        assert s.job(j).state is JobState.PENDING

    def test_resume_to_spare_keeps_unhealthy_nodes_drained(self):
        s = scheduler(16, checknode=lambda n: n != 15)
        s.fail_node(15)
        assert s.resume_to_spare(15) is False
        assert s.node_state(15) is NodeState.DRAIN

    def test_running_job_on_sees_only_running_allocations(self):
        s = scheduler(16)
        assert s.running_job_on(0) is None
        j = s.submit(JobRequest(8, 100.0))
        node = s.job(j).nodes[0]
        assert s.running_job_on(node) == j
        s.cancel(j)
        assert s.running_job_on(node) is None

    def test_queue_depth_tracks_pending_jobs(self):
        s = scheduler(16)
        assert s.queue_depth == 0
        s.submit(JobRequest(16, 100.0))
        s.submit(JobRequest(8, 100.0))
        s.submit(JobRequest(8, 100.0))
        assert s.queue_depth == 2
