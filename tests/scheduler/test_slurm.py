"""Slurm scheduler tests: exclusivity, checknode gating, job lifecycle."""

import pytest

from repro.errors import SchedulerError
from repro.scheduler.placement import PlacementPolicy
from repro.scheduler.slurm import JobRequest, JobState, SlurmScheduler
from repro.scheduler.slurm import NodeState


def scheduler(n: int = 256, checknode=None) -> SlurmScheduler:
    return SlurmScheduler(n_nodes=n, checknode=checknode)


class TestExclusivity:
    def test_nodes_are_exclusive_to_one_job(self):
        # "Compute nodes are scheduled exclusively to a single job"
        s = scheduler(256)
        j1 = s.submit(JobRequest(200, 100.0))
        j2 = s.submit(JobRequest(100, 100.0))
        assert s.job(j1).state is JobState.RUNNING
        assert s.job(j2).state is JobState.PENDING
        assert not set(s.job(j1).nodes) & s.free_nodes

    def test_queued_job_starts_on_completion(self):
        s = scheduler(256)
        s.submit(JobRequest(200, 10.0))
        j2 = s.submit(JobRequest(100, 10.0))
        s.step()
        assert s.job(j2).state is JobState.RUNNING

    def test_backfill_small_job_jumps_queue(self):
        s = scheduler(256)
        s.submit(JobRequest(200, 100.0, name="big1"))
        j_big2 = s.submit(JobRequest(220, 100.0, name="big2"))  # blocks
        j_small = s.submit(JobRequest(40, 1.0, name="small"))
        assert s.job(j_big2).state is JobState.PENDING
        assert s.job(j_small).state is JobState.RUNNING


class TestChecknode:
    def test_unhealthy_nodes_drained_at_boot(self):
        s = scheduler(64, checknode=lambda n: n != 5)
        assert 5 in s.drained_nodes
        assert s.node_state(5) is NodeState.DRAIN

    def test_checknode_runs_between_jobs(self):
        # "At boot and between every job, Slurm runs a checknode script"
        sick = set()
        s = scheduler(64, checknode=lambda n: n not in sick)
        j = s.submit(JobRequest(8, 5.0))
        sick.add(s.job(j).nodes[0])    # node breaks during the job
        s.run_until_idle()
        assert s.job(j).state is JobState.COMPLETED
        assert s.job(j).nodes[0] in s.drained_nodes

    def test_drained_node_not_allocated(self):
        s = scheduler(16, checknode=lambda n: n != 0)
        j = s.submit(JobRequest(15, 1.0))
        assert 0 not in s.job(j).nodes

    def test_resume_reruns_checknode(self):
        sick = {3}
        s = scheduler(16, checknode=lambda n: n not in sick)
        assert 3 in s.drained_nodes
        sick.clear()
        s.resume(3)
        assert 3 in s.free_nodes


class TestJobSteps:
    def test_steps_get_unique_vnis(self):
        # "Slurm integrates with the Slingshot software to allocate a
        # unique Virtual Network Identifier (VNI) per jobstep"
        s = scheduler(64)
        j1 = s.submit(JobRequest(8, 10.0))
        j2 = s.submit(JobRequest(8, 10.0))
        vnis = [s.start_step(j1), s.start_step(j1), s.start_step(j2)]
        assert len(set(vnis)) == 3

    def test_vnis_released_at_completion(self):
        s = scheduler(64)
        j = s.submit(JobRequest(8, 5.0))
        s.start_step(j)
        assert s.vni.live_count == 1
        s.run_until_idle()
        assert s.vni.live_count == 0

    def test_step_on_pending_job_rejected(self):
        s = scheduler(16)
        s.submit(JobRequest(16, 10.0))
        j2 = s.submit(JobRequest(16, 10.0))
        with pytest.raises(SchedulerError):
            s.start_step(j2)


class TestLifecycle:
    def test_time_advances_to_completions(self):
        s = scheduler(64)
        s.submit(JobRequest(8, 30.0))
        s.submit(JobRequest(8, 10.0))
        assert s.step() == 10.0
        assert s.step() == 30.0

    def test_cancel_pending(self):
        s = scheduler(16)
        s.submit(JobRequest(16, 10.0))
        j2 = s.submit(JobRequest(16, 10.0))
        s.cancel(j2)
        assert s.job(j2).state is JobState.CANCELLED

    def test_cancel_running_frees_nodes(self):
        s = scheduler(16)
        j = s.submit(JobRequest(16, 10.0))
        s.cancel(j)
        assert len(s.free_nodes) == 16

    def test_cancel_finished_rejected(self):
        s = scheduler(16)
        j = s.submit(JobRequest(4, 1.0))
        s.run_until_idle()
        with pytest.raises(SchedulerError):
            s.cancel(j)

    def test_oversized_job_rejected(self):
        s = scheduler(16)
        with pytest.raises(SchedulerError):
            s.submit(JobRequest(17, 1.0))

    def test_invalid_request(self):
        with pytest.raises(SchedulerError):
            JobRequest(0, 1.0)
        with pytest.raises(SchedulerError):
            JobRequest(1, 0.0)

    def test_placement_policy_respected(self):
        s = scheduler(512)
        j = s.submit(JobRequest(64, 10.0, policy=PlacementPolicy.SPREAD))
        from repro.scheduler.placement import allocation_stats
        assert allocation_stats(s.job(j).nodes).groups_spanned == 4

    def test_drain_allocated_node_rejected(self):
        s = scheduler(16)
        j = s.submit(JobRequest(16, 10.0))
        with pytest.raises(SchedulerError):
            s.drain(s.job(j).nodes[0])


class TestFailNode:
    """fail_node / resume: the chaos engine's interrupt-and-repair path."""

    def test_failing_an_allocated_node_interrupts_its_job(self):
        s = scheduler(16)
        j = s.submit(JobRequest(8, 100.0))
        victim = s.job(j).nodes[0]
        assert s.fail_node(victim) == j
        assert s.job(j).state is JobState.CANCELLED
        assert s.node_state(victim) is NodeState.DRAIN

    def test_failing_an_idle_node_just_drains_it(self):
        s = scheduler(16)
        assert s.fail_node(15) is None
        assert s.node_state(15) is NodeState.DRAIN

    def test_backfill_never_lands_on_the_dead_node(self):
        """The drain must happen before the cancel frees capacity."""
        s = scheduler(16)
        j1 = s.submit(JobRequest(16, 100.0))
        j2 = s.submit(JobRequest(16, 100.0))
        s.fail_node(0)
        assert s.job(j1).state is JobState.CANCELLED
        assert s.job(j2).state is JobState.PENDING   # only 15 nodes left
        j3 = s.submit(JobRequest(15, 100.0))
        assert s.job(j3).state is JobState.RUNNING
        assert 0 not in s.job(j3).nodes

    def test_surviving_nodes_regate_through_checknode(self):
        sick = set()
        s = scheduler(16, checknode=lambda n: n not in sick)
        j = s.submit(JobRequest(8, 100.0))
        a, b = s.job(j).nodes[:2]
        sick.update({a, b})
        s.fail_node(a)
        # co-victim b was caught by the between-jobs checknode sweep
        assert s.node_state(b) is NodeState.DRAIN
        assert len(s.free_nodes) == 16 - 8 + 6

    def test_resume_restarts_the_queue(self):
        s = scheduler(16)
        s.fail_node(0)
        j = s.submit(JobRequest(16, 10.0))
        assert s.job(j).state is JobState.PENDING
        s.resume(0)
        assert s.job(j).state is JobState.RUNNING

    def test_resume_of_still_sick_node_stays_drained(self):
        sick = {0}
        s = scheduler(16, checknode=lambda n: n not in sick)
        s.resume(0)
        assert s.node_state(0) is NodeState.DRAIN
        sick.clear()
        s.resume(0)
        assert 0 in s.free_nodes
