"""InfinityFabric twisted-ladder topology tests (paper Figure 2)."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.node.xgmi import GcdTopology, XgmiClass, XgmiLink, twisted_ladder


@pytest.fixture()
def topo() -> GcdTopology:
    return twisted_ladder()


class TestLinkRates:
    def test_xgmi2_rate(self):
        # "36+36 GB/s per CPU-to-GCD connection"
        assert XgmiClass.XGMI2.rate_per_direction == 36e9

    def test_xgmi3_rate(self):
        # "50+50 GB/s" per GCD-to-GCD link
        assert XgmiClass.XGMI3.rate_per_direction == 50e9

    def test_ganged_link_bandwidth(self):
        assert XgmiLink(0, 1, 4).bandwidth_per_direction == 200e9
        assert XgmiLink(0, 4, 2).bandwidth_per_direction == 100e9
        assert XgmiLink(0, 2, 1).bandwidth_per_direction == 50e9

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            XgmiLink(3, 3, 1)

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            XgmiLink(0, 1, 3)


class TestTwistedLadderStructure:
    def test_eight_gcds(self, topo):
        assert topo.n_gcds == 8

    def test_every_gcd_has_eight_physical_links(self, topo):
        # One 4-gang + one 2-gang + two singles per GCD.
        for g in range(8):
            assert topo.degree_links(g) == 8

    def test_pair_counts_by_width(self, topo):
        pairs = topo.pairs_by_width()
        assert len(pairs[4]) == 4   # one per OAM package
        assert len(pairs[2]) == 4
        assert len(pairs[1]) == 8

    def test_oam_pairs_have_four_links(self, topo):
        # "the two GCDs within each MI250X OAM package have four links"
        for a, b in [(0, 1), (2, 3), (4, 5), (6, 7)]:
            assert topo.width_between(a, b) == 4

    def test_fully_connected(self, topo):
        assert topo.is_fully_connected()

    def test_diameter_at_most_two_hops(self, topo):
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert topo.shortest_hop_count(a, b) <= 2

    def test_each_gcd_has_four_neighbors(self, topo):
        for g in range(8):
            assert len(topo.neighbors(g)) == 4

    def test_duplicate_links_rejected(self):
        with pytest.raises(TopologyError):
            GcdTopology(n_gcds=4, links=[XgmiLink(0, 1, 1), XgmiLink(1, 0, 2)])

    def test_out_of_range_link_rejected(self):
        with pytest.raises(TopologyError):
            GcdTopology(n_gcds=4, links=[XgmiLink(0, 7, 1)])


class TestBandwidthMetrics:
    def test_bisection_positive(self, topo):
        assert topo.bisection_bandwidth() > 0

    def test_bisection_at_least_cross_board(self, topo):
        # Cutting the board between OAM pairs (0,1,2,3)|(4,5,6,7) crosses
        # four 2-gangs and four singles: 4*100 + 4*50 = 600 GB/s.
        assert topo.bisection_bandwidth() <= 600e9

    def test_link_between_is_symmetric(self, topo):
        assert topo.link_between(0, 1) is topo.link_between(1, 0)

    def test_nonadjacent_returns_none(self, topo):
        # (0,3) are diagonal across packages: no direct link in the ladder.
        assert topo.link_between(0, 3) is None

    def test_disconnected_raises(self):
        t = GcdTopology(n_gcds=4, links=[XgmiLink(0, 1, 1)])
        with pytest.raises(TopologyError):
            t.shortest_hop_count(0, 3)
