"""CoralGemm model tests — reproduces Figure 3."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.node.gemm import GemmModel, run_host_dgemm
from repro.node.gpu import Precision

#: Figure 3's achieved TF/s at large N.
FIG3_ACHIEVED = {
    Precision.FP64: 33.8,
    Precision.FP32: 24.1,
    Precision.FP16: 111.2,
}


@pytest.fixture()
def model() -> GemmModel:
    return GemmModel()


class TestFigure3Reproduction:
    @pytest.mark.parametrize("precision,tflops", FIG3_ACHIEVED.items())
    def test_achieved_matches_paper(self, model, precision, tflops):
        point = model.predict(16384, precision)
        assert point.tflops == pytest.approx(tflops, rel=0.01)

    def test_fp64_and_fp32_exceed_vector_peak(self, model):
        # The paper's headline observation: matrix cores push achieved
        # above the 23.95 TF/s vector peak.
        fig = model.figure3()
        for prec in ("FP64", "FP32"):
            assert fig[prec]["achieved_tflops"] > fig[prec]["vector_peak_tflops"]

    def test_matrix_cores_used_at_all_precisions(self, model):
        # Verified with rocprof in the paper; heuristic threshold here.
        for prec in FIG3_ACHIEVED:
            assert model.predict(4096, prec).used_matrix_cores

    def test_small_gemm_stays_on_vector_pipe(self, model):
        point = model.predict(64, Precision.FP64)
        assert not point.used_matrix_cores
        assert point.tflops < 23.95

    def test_fp16_fastest_fp64_fp32_comparable(self, model):
        fig = model.figure3()
        assert fig["FP16"]["achieved_tflops"] > fig["FP64"]["achieved_tflops"]
        assert fig["FP64"]["achieved_tflops"] > fig["FP32"]["achieved_tflops"]


class TestSweepBehaviour:
    def test_sweep_is_monotone_in_size(self, model):
        points = model.sweep(Precision.FP64)
        rates = [p.flops_per_s for p in points]
        assert rates == sorted(rates)

    def test_sweep_default_sizes(self, model):
        points = model.sweep(Precision.FP16)
        assert [p.n for p in points] == [512, 1024, 2048, 4096, 8192, 16384]

    def test_large_gemm_is_compute_bound(self, model):
        assert model.predict(8192, Precision.FP64).bound == "compute"

    def test_arithmetic_intensity_grows_with_block_reuse(self, model):
        ai_small = model.arithmetic_intensity(64, Precision.FP64)
        ai_large = model.arithmetic_intensity(4096, Precision.FP64)
        assert ai_large > ai_small

    def test_invalid_size_raises(self, model):
        with pytest.raises(ConfigurationError):
            model.predict(0, Precision.FP64)


class TestHostDgemm:
    def test_result_is_correct_product(self):
        flops, c = run_host_dgemm(n=64, repeats=1)
        rng = np.random.default_rng(12345)
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        assert np.allclose(c, a @ b)
        assert flops > 0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ConfigurationError):
            run_host_dgemm(0)
