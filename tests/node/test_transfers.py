"""Transfer-engine tests — reproduce Figures 4 and 5."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.node.cpu import NpsMode
from repro.node.transfers import (TransferEngine, aggregate_host_to_gcd_bandwidth,
                                  cu_kernel_bandwidth, figure4_series,
                                  figure5_series, host_to_gcd_bandwidth,
                                  ramp_bandwidth, sdma_bandwidth)

BIG = 1 << 30


class TestFigure5CuKernels:
    def test_four_link_pair_reaches_145_5(self):
        # Paper: "145.5 GB/s for GCD pairs with 4 xGMI links"
        assert cu_kernel_bandwidth(0, 1, BIG).bandwidth == pytest.approx(
            145.5e9, rel=0.01)

    def test_two_link_pair_reaches_74_9(self):
        assert cu_kernel_bandwidth(0, 4, BIG).bandwidth == pytest.approx(
            74.9e9, rel=0.01)

    def test_single_link_pair_reaches_37_5(self):
        assert cu_kernel_bandwidth(0, 2, BIG).bandwidth == pytest.approx(
            37.5e9, rel=0.01)

    def test_cu_kernels_stripe_across_links(self):
        b1 = cu_kernel_bandwidth(0, 2, BIG).bandwidth
        b4 = cu_kernel_bandwidth(0, 1, BIG).bandwidth
        assert b4 > 3.5 * b1


class TestFigure5Sdma:
    def test_sdma_capped_at_50_regardless_of_links(self):
        # The paper's key observation: SDMA cannot stripe.
        for pair in [(0, 1), (0, 4), (0, 2)]:
            assert sdma_bandwidth(*pair, BIG).bandwidth == pytest.approx(
                50e9, rel=0.02)

    def test_sdma_beats_cu_on_single_link(self):
        assert (sdma_bandwidth(0, 2, BIG).bandwidth
                > cu_kernel_bandwidth(0, 2, BIG).bandwidth)

    def test_cu_beats_sdma_on_multi_link(self):
        assert (cu_kernel_bandwidth(0, 1, BIG).bandwidth
                > sdma_bandwidth(0, 1, BIG).bandwidth)

    def test_nonadjacent_pair_rejected(self):
        with pytest.raises(TopologyError):
            sdma_bandwidth(0, 3)


class TestFigure4HostDevice:
    def test_single_core_25_5_gbs(self):
        # "we see it reach 25.5 GB/s, ~71% of the peak xGMI 2.0 bandwidth"
        assert host_to_gcd_bandwidth(BIG) == pytest.approx(25.5e9, rel=0.01)

    def test_eight_ranks_saturate_at_dram_180(self):
        # Figure 4's plateau: ~180 GB/s, matching STREAM, not 8x36.
        agg = aggregate_host_to_gcd_bandwidth(8, BIG)
        assert agg == pytest.approx(179.2e9, rel=0.01)
        assert agg < 8 * 36e9

    def test_two_ranks_are_link_limited(self):
        agg = aggregate_host_to_gcd_bandwidth(2, BIG)
        assert agg == pytest.approx(2 * 25.5e9, rel=0.01)

    def test_nps1_lowers_the_plateau(self):
        nps1 = aggregate_host_to_gcd_bandwidth(8, BIG, nps=NpsMode.NPS1)
        nps4 = aggregate_host_to_gcd_bandwidth(8, BIG, nps=NpsMode.NPS4)
        assert nps1 < nps4

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate_host_to_gcd_bandwidth(0)


class TestRamp:
    def test_ramp_monotone_in_size(self):
        sizes = [1 << k for k in range(10, 30, 2)]
        vals = [ramp_bandwidth(s, 100e9, 1e-5) for s in sizes]
        assert vals == sorted(vals)

    def test_ramp_half_saturation(self):
        peak, lat = 100e9, 1e-5
        s_half = peak * lat
        assert ramp_bandwidth(s_half, peak, lat) == pytest.approx(peak / 2)

    def test_zero_size(self):
        assert ramp_bandwidth(0, 100e9, 1e-5) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ramp_bandwidth(-1, 100e9, 1e-5)


class TestSeriesHelpers:
    def test_figure4_series_saturates(self):
        series = figure4_series()
        assert series[-1][1] == pytest.approx(179.2, rel=0.02)
        assert series[0][1] < series[-1][1]

    def test_figure5_series_has_three_widths(self):
        cu = figure5_series(TransferEngine.CU_KERNEL)
        assert set(cu.keys()) == {1, 2, 4}
        sdma = figure5_series(TransferEngine.SDMA)
        # SDMA endpoints all converge near 50 GB/s at large size.
        finals = [s[-1][1] for s in sdma.values()]
        assert max(finals) - min(finals) < 1.0
