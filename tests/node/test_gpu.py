"""MI250X / GCD model tests (paper §3.1.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.node.gpu import Gcd, Mi250x, Precision
from repro.units import GiB


class TestGcd:
    def test_fp64_vector_peak(self):
        assert Gcd().peak_flops(Precision.FP64, matrix=False) == pytest.approx(
            23.95e12)

    def test_fp64_matrix_doubles_vector(self):
        g = Gcd()
        assert g.peak_flops(Precision.FP64, matrix=True) == pytest.approx(
            2 * g.peak_flops(Precision.FP64, matrix=False))

    def test_hbm_bandwidth_is_1_6354_tbs(self):
        assert Gcd().hbm_bandwidth == pytest.approx(1.6354e12)

    def test_hbm_capacity_64_gib(self):
        assert Gcd().hbm_capacity_bytes == 64 * GiB

    def test_four_hbm_stacks(self):
        g = Gcd()
        assert g.hbm_stacks == 4
        assert g.per_stack_bandwidth * 4 == pytest.approx(g.hbm_bandwidth)

    def test_thread_count(self):
        # 110 CUs x 64 threads — §5.3's concurrency accounting unit.
        assert Gcd().threads == 7040

    def test_invalid_cu_count(self):
        with pytest.raises(ConfigurationError):
            Gcd(compute_units=0)


class TestMi250x:
    def test_two_gcds(self):
        assert Mi250x().gcds == 2

    def test_package_aggregates_double_gcd(self):
        m = Mi250x()
        assert m.hbm_capacity_bytes == 2 * m.gcd.hbm_capacity_bytes
        assert m.hbm_bandwidth == pytest.approx(2 * m.gcd.hbm_bandwidth)
        assert m.peak_flops(Precision.FP64) == pytest.approx(
            2 * m.gcd.peak_flops(Precision.FP64))

    def test_220_compute_units(self):
        # §5.3: "37,888 MI250X GPUs with 220 Compute Units"
        assert Mi250x().compute_units == 220

    def test_water_cooled_oam(self):
        assert Mi250x().water_cooled


class TestPrecision:
    def test_itemsizes(self):
        assert Precision.FP64.itemsize == 8
        assert Precision.FP32.itemsize == 4
        assert Precision.FP16.itemsize == 2
        assert Precision.BF16.itemsize == 2

    def test_fp16_matrix_peak(self):
        assert Gcd().peak_flops(Precision.FP16) == pytest.approx(191.5e12)
