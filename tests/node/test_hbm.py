"""GPU STREAM model tests — reproduces Table 4."""

import pytest

from repro.node.hbm import GpuStreamModel, HbmConfig
from repro.node.stream import StreamKernel

#: Table 4 of the paper, MB/s.
TABLE4 = {
    "Copy": 1336574.8,
    "Mul": 1338272.2,
    "Add": 1288240.3,
    "Triad": 1285239.7,
    "Dot": 1374240.6,
}


@pytest.fixture()
def model() -> GpuStreamModel:
    return GpuStreamModel()


class TestTable4Reproduction:
    @pytest.mark.parametrize("kernel,mbps", TABLE4.items())
    def test_matches_paper_within_1pct(self, model, kernel, mbps):
        assert model.table4()[kernel] == pytest.approx(mbps, rel=0.01)

    def test_efficiency_band_79_to_84_pct(self, model):
        # The paper: "79% to 84% of peak HBM bandwidth".
        for kernel in GpuStreamModel.TABLE4_KERNELS:
            assert 0.78 <= model.efficiency(kernel) <= 0.85

    def test_dot_is_fastest(self, model):
        # Read-only: no write turnaround on the HBM bus.
        table = model.table4()
        assert table["Dot"] == max(table.values())

    def test_three_array_kernels_are_slowest(self, model):
        table = model.table4()
        assert table["Add"] < table["Copy"]
        assert table["Triad"] < table["Mul"]


class TestHbmConfig:
    def test_peak_is_1_6354_tbs(self):
        assert HbmConfig().peak_bandwidth == pytest.approx(1.6354e12)

    def test_from_gcd_matches(self, model):
        assert model.hbm.peak_bandwidth == pytest.approx(
            model.gcd.hbm_bandwidth)

    def test_gpu_beats_cpu_stream_by_large_factor(self, model):
        from repro.node.dram import CpuStreamModel
        cpu = CpuStreamModel()
        gpu_triad = model.predict(StreamKernel.TRIAD)
        cpu_triad = cpu.predict(StreamKernel.TRIAD, temporal=False)
        # Per-GCD HBM STREAM is ~7x one socket's DDR STREAM.
        assert gpu_triad / cpu_triad > 6.0
