"""Executable STREAM kernel tests (semantics, not bandwidth)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.node.stream import (StreamKernel, run_stream, stream_traffic_bytes,
                               verify_stream_semantics)


class TestKernelTaxonomy:
    def test_counted_words(self):
        assert StreamKernel.COPY.counted_words == 2
        assert StreamKernel.ADD.counted_words == 3
        assert StreamKernel.DOT.counted_words == 2

    def test_mul_is_gpu_name_for_scale(self):
        assert StreamKernel.MUL.reads == StreamKernel.SCALE.reads
        assert StreamKernel.MUL.writes == StreamKernel.SCALE.writes

    def test_traffic_bytes(self):
        assert stream_traffic_bytes(StreamKernel.TRIAD, 1000) == 3 * 1000 * 8
        assert stream_traffic_bytes(StreamKernel.TRIAD, 1000,
                                    write_allocate=True) == 4 * 1000 * 8


class TestExecution:
    @pytest.mark.parametrize("kernel", list(StreamKernel))
    def test_all_kernels_run(self, kernel):
        result = run_stream(kernel, n=10_000, repeats=1)
        assert result.seconds > 0
        assert result.bandwidth > 0
        assert result.counted_bytes == kernel.counted_words * 10_000 * 8

    def test_semantics_validation(self):
        assert verify_stream_semantics()

    def test_copy_produces_exact_copy(self):
        n = 1000
        a = np.full(n, 1.0)
        c = np.zeros(n)
        np.copyto(c, a)
        assert np.array_equal(a, c)

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigurationError):
            run_stream(StreamKernel.COPY, n=0)

    def test_bandwidth_definition(self):
        r = run_stream(StreamKernel.COPY, n=100_000, repeats=1)
        assert r.bandwidth == pytest.approx(r.counted_bytes / r.seconds)
