"""Roofline and HPL-vs-HPCG tests (the conclusion's metric discussion)."""

import pytest

from repro.errors import ConfigurationError
from repro.node.roofline import (HPCG_SYSTEM_FLOPS, HPL_SYSTEM_FLOPS,
                                 GcdRoofline, hpcg_to_hpl_ratio,
                                 project_hpcg, project_hpl)


@pytest.fixture()
def roof() -> GcdRoofline:
    return GcdRoofline()


class TestRoofline:
    def test_ridge_point(self, roof):
        # 47.9 TF / 1.6354 TB/s ~ 29.3 FLOP/byte
        assert roof.ridge_point == pytest.approx(29.29, abs=0.05)

    def test_memory_bound_below_ridge(self, roof):
        assert roof.is_memory_bound(0.25)
        assert not roof.is_memory_bound(100.0)

    def test_attainable_continuous_at_ridge(self, roof):
        at_ridge = roof.attainable(roof.ridge_point)
        assert at_ridge == pytest.approx(roof.compute_ceiling, rel=1e-9)

    def test_attainable_linear_below_ridge(self, roof):
        assert roof.attainable(0.5) == pytest.approx(2 * roof.attainable(0.25))

    def test_series_monotone(self, roof):
        vals = [v for _, v in roof.series()]
        assert vals == sorted(vals)

    def test_invalid_intensity(self, roof):
        with pytest.raises(ConfigurationError):
            roof.attainable(0.0)


class TestListEntries:
    def test_hpl_projection_matches_rmax(self):
        assert project_hpl() == pytest.approx(HPL_SYSTEM_FLOPS, rel=0.01)

    def test_hpcg_projection_matches_list(self):
        # June 2022 HPCG list: 14.05 PF
        assert project_hpcg() == pytest.approx(HPCG_SYSTEM_FLOPS, rel=0.01)

    def test_the_two_orders_of_magnitude_gap(self):
        # HPCG/HPL ~ 1.3%: why [38] calls HPCG the honest metric.
        ratio = hpcg_to_hpl_ratio()
        assert 0.01 < ratio < 0.02

    def test_projections_scale_with_gcds(self):
        assert project_hpcg(37888) == pytest.approx(project_hpcg() / 2)
