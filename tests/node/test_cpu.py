"""Trento CPU model tests (paper §3.1.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.node.cpu import NpsMode, TrentoCpu
from repro.units import GiB


class TestTrentoDefaults:
    def test_core_and_ccd_counts(self, cpu):
        assert cpu.cores == 64
        assert cpu.ccds == 8
        assert cpu.cores_per_ccd == 8

    def test_memory_capacity_is_512_gib(self, cpu):
        assert cpu.memory_capacity_bytes == 512 * GiB

    def test_peak_dram_bandwidth_204_8_gbs(self, cpu):
        # 8 channels x 3200 MT/s x 8 B (the paper rounds to "205").
        assert cpu.peak_dram_bandwidth == pytest.approx(204.8e9)

    def test_frontier_runs_nps4(self, cpu):
        assert cpu.nps is NpsMode.NPS4

    def test_hardware_threads(self, cpu):
        assert cpu.hardware_threads == 128


class TestNpsModes:
    def test_dimms_per_domain(self):
        assert NpsMode.NPS1.dimms_per_domain == 8
        assert NpsMode.NPS2.dimms_per_domain == 4
        assert NpsMode.NPS4.dimms_per_domain == 2

    def test_numa_domains(self, cpu):
        assert cpu.numa_domains == 4
        assert cpu.with_nps(NpsMode.NPS1).numa_domains == 1

    def test_domain_bandwidth_splits_evenly(self, cpu):
        assert (cpu.peak_domain_bandwidth * cpu.numa_domains
                == pytest.approx(cpu.peak_dram_bandwidth))

    def test_with_nps_preserves_other_fields(self, cpu):
        other = cpu.with_nps(NpsMode.NPS1)
        assert other.cores == cpu.cores
        assert other.memory_capacity_bytes == cpu.memory_capacity_bytes
        assert other.nps is NpsMode.NPS1


class TestValidation:
    def test_cores_must_divide_ccds(self):
        with pytest.raises(ConfigurationError):
            TrentoCpu(cores=62, ccds=8)

    def test_dimms_must_divide_nps(self):
        with pytest.raises(ConfigurationError):
            TrentoCpu(dimm_count=6, nps=NpsMode.NPS4)
