"""CPU STREAM model tests — reproduces Table 3."""

import pytest

from repro.errors import ConfigurationError
from repro.node.cpu import NpsMode
from repro.node.dram import CpuStreamModel, DdrConfig, StreamCalibration
from repro.node.stream import StreamKernel

#: Table 3 of the paper, MB/s.
TABLE3 = {
    "Copy": (176780.4, 179130.5),
    "Scale": (107262.2, 172396.2),
    "Add": (125567.1, 178356.8),
    "Triad": (120702.1, 178277.0),
}


@pytest.fixture()
def model() -> CpuStreamModel:
    return CpuStreamModel()


class TestDdrConfig:
    def test_peak_bandwidth(self):
        assert DdrConfig().peak_bandwidth == pytest.approx(204.8e9)

    def test_from_cpu(self, cpu):
        assert DdrConfig.from_cpu(cpu).peak_bandwidth == cpu.peak_dram_bandwidth


class TestTable3Reproduction:
    @pytest.mark.parametrize("kernel,temporal_mbps,nt_mbps",
                             [(k, *v) for k, v in TABLE3.items()])
    def test_matches_paper_within_2pct(self, model, kernel, temporal_mbps,
                                       nt_mbps):
        rows = model.table3()
        assert rows[kernel]["temporal_MBps"] == pytest.approx(temporal_mbps,
                                                              rel=0.02)
        assert rows[kernel]["non_temporal_MBps"] == pytest.approx(nt_mbps,
                                                                  rel=0.02)

    def test_temporal_never_beats_non_temporal(self, model):
        for row in model.table3().values():
            assert row["temporal_MBps"] <= row["non_temporal_MBps"] * 1.001

    def test_scale_pays_the_biggest_write_allocate_penalty(self, model):
        rows = model.table3()
        # Scale moves 3 words for 2 counted; Add/Triad 4 for 3.
        assert rows["Scale"]["temporal_MBps"] < rows["Add"]["temporal_MBps"]
        assert rows["Scale"]["temporal_MBps"] < rows["Triad"]["temporal_MBps"]

    def test_copy_dodges_the_penalty_via_memcpy(self, model):
        rows = model.table3()
        ratio = rows["Copy"]["temporal_MBps"] / rows["Copy"]["non_temporal_MBps"]
        assert ratio > 0.95   # nearly identical, unlike Scale's ~0.62


class TestNpsEffect:
    def test_nps4_reaches_180_gbs(self, model):
        # "Trento is able to achieve up to 180 GB/s ... in NPS-4 mode"
        assert model.sustained_nt_bandwidth(NpsMode.NPS4) == pytest.approx(
            179.2e9, rel=0.01)

    def test_nps1_drops_to_125_gbs(self, model):
        # "When operating in NPS-1, that rate drops to ~125 GB/s"
        assert model.sustained_nt_bandwidth(NpsMode.NPS1) == pytest.approx(
            125e9, rel=0.02)

    def test_nps4_beats_nps1_for_aggregate(self, model):
        assert (model.sustained_nt_bandwidth(NpsMode.NPS4)
                > model.sustained_nt_bandwidth(NpsMode.NPS2)
                > model.sustained_nt_bandwidth(NpsMode.NPS1))


class TestCalibrationValidation:
    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            StreamCalibration(nt_efficiency={NpsMode.NPS4: 1.5})

    def test_rejects_bad_temporal_fraction(self):
        with pytest.raises(ConfigurationError):
            StreamCalibration(temporal_raw_fraction=0.0)

    def test_predict_unknown_nps_raises(self, model):
        bare = CpuStreamModel(calibration=StreamCalibration(
            nt_efficiency={NpsMode.NPS4: 0.875}))
        with pytest.raises(ConfigurationError):
            bare.predict(StreamKernel.COPY, temporal=False, nps=NpsMode.NPS1)


class TestWriteAllocateAccounting:
    def test_counted_vs_actual_words(self):
        assert StreamKernel.SCALE.counted_words == 2
        assert StreamKernel.SCALE.actual_words(write_allocate=True) == 3
        assert StreamKernel.TRIAD.counted_words == 3
        assert StreamKernel.TRIAD.actual_words(write_allocate=True) == 4
        assert StreamKernel.DOT.actual_words(write_allocate=True) == 2

    def test_nt_path_has_no_extra_traffic(self):
        for k in StreamKernel:
            assert k.actual_words(write_allocate=False) == k.counted_words
