"""Data-placement advisor tests (§3.1.2's keep-it-in-HBM advice)."""

import pytest

from repro.errors import ConfigurationError
from repro.node.memory import MemoryPlanner, Placement
from repro.units import GiB


@pytest.fixture()
def planner() -> MemoryPlanner:
    return MemoryPlanner()


class TestAdvice:
    def test_reused_data_belongs_in_hbm(self, planner):
        # "we expect most users will keep their data in the HBM"
        plan = planner.best_placement(8 * GiB, touches=50)
        assert plan.placement is Placement.HBM_RESIDENT
        assert plan.effective_bandwidth == pytest.approx(
            planner.gcd.hbm_bandwidth)

    def test_oversized_working_set_must_stream(self, planner):
        plan = planner.best_placement(200 * GiB, touches=10)
        assert plan.placement is Placement.DDR_OVER_XGMI

    def test_staging_crossover_is_immediate(self, planner):
        # With a 64x bandwidth ratio, staging pays off after ~1 touch.
        crossover = planner.staging_crossover_touches()
        assert 1.0 < crossover < 1.05

    def test_staging_beats_ddr_at_two_touches(self, planner):
        staged = planner.phase_time(4 * GiB, 2, Placement.STAGED)
        over_xgmi = planner.phase_time(4 * GiB, 2, Placement.DDR_OVER_XGMI)
        assert staged < over_xgmi

    def test_hbm_advantage_is_tens_of_x(self, planner):
        # 1635.4 / 25.6 (one CCD's DDR share) ~ 64x
        assert planner.hbm_advantage() > 40.0


class TestMechanics:
    def test_phase_time_scales_with_touches(self, planner):
        one = planner.phase_time(1 * GiB, 1, Placement.HBM_RESIDENT)
        ten = planner.phase_time(1 * GiB, 10, Placement.HBM_RESIDENT)
        assert ten == pytest.approx(10 * one)

    def test_staged_includes_the_copy(self, planner):
        staged = planner.phase_time(1 * GiB, 1, Placement.STAGED)
        resident = planner.phase_time(1 * GiB, 1, Placement.HBM_RESIDENT)
        assert staged > resident

    def test_capacity_enforced(self, planner):
        with pytest.raises(ConfigurationError):
            planner.phase_time(100 * GiB, 1, Placement.HBM_RESIDENT)
        with pytest.raises(ConfigurationError):
            planner.phase_time(100 * GiB, 1, Placement.STAGED)

    def test_input_validation(self, planner):
        with pytest.raises(ConfigurationError):
            planner.phase_time(0, 1, Placement.HBM_RESIDENT)
        with pytest.raises(ConfigurationError):
            planner.best_placement(1 * GiB, 0)
