"""Assembled Bard Peak node tests (paper §3.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.node.gpu import Precision
from repro.node.node import BardPeakNode, CassiniNic
from repro.units import GiB


class TestNic:
    def test_200_gbps_is_25_gbs(self):
        assert CassiniNic().rate_bytes == 25e9

    def test_os_bypass(self):
        assert CassiniNic().os_bypass


class TestComposition:
    def test_user_sees_eight_gpus(self, node):
        # "the user sees eight GPUs when they query the node"
        assert node.gcd_count == 8

    def test_one_nic_per_oam(self, node):
        assert node.nic_count == node.oam_count == 4
        for gcd in range(8):
            assert node.nic_for_gcd(gcd) == gcd // 2

    def test_ccd_gcd_pairing_is_one_to_one(self, node):
        assert [node.ccd_for_gcd(g) for g in range(8)] == list(range(8))

    def test_oam_for_gcd(self, node):
        assert node.oam_for_gcd(0) == node.oam_for_gcd(1) == 0
        assert node.oam_for_gcd(6) == node.oam_for_gcd(7) == 3

    def test_unknown_gcd_rejected(self, node):
        with pytest.raises(ConfigurationError):
            node.ccd_for_gcd(8)
        with pytest.raises(ConfigurationError):
            node.oam_for_gcd(-1)


class TestAggregates:
    def test_memory_capacities_512_gib_each(self, node):
        assert node.ddr_capacity_bytes == 512 * GiB
        assert node.hbm_capacity_bytes == 512 * GiB

    def test_hbm_bandwidth_13_08_tbs(self, node):
        assert node.hbm_bandwidth == pytest.approx(13.083e12, rel=0.001)

    def test_hbm_to_ddr_ratio_is_64x(self, node):
        # "the node's aggregate peak GPU HBM bandwidth ... is 64 times
        # greater" — worse than Titan's 40x and Summit's 16x.
        assert node.hbm_to_ddr_bandwidth_ratio == pytest.approx(64.0, rel=0.01)

    def test_injection_bandwidth_100_gbs(self, node):
        assert node.injection_bandwidth == 100e9

    def test_gpu_supplies_over_99pct_of_flops(self, node):
        # §4.1.1: "over 99% of the FLOPs in Frontier coming from the GPUs"
        assert node.gpu_flop_fraction > 0.99

    def test_gpu_threads_56k_per_node(self, node):
        assert node.gpu_threads == 8 * 110 * 64

    def test_peak_fp64(self, node):
        assert node.peak_flops(Precision.FP64) == pytest.approx(8 * 47.9e12)


class TestValidation:
    def test_nic_count_must_match_oams(self):
        with pytest.raises(ConfigurationError):
            BardPeakNode(nic_count=2)
