"""Ensemble timeflow: batched columns vs the sequential oracle.

The contract under test is ``batchroute``'s ``chunk=1`` idiom: every
column of :meth:`TimeflowEngine.run_ensemble` must be **bit-identical**
to a scalar :meth:`TimeflowEngine.run` of the same config on the same
engine (same planned paths — planning is RNG-fed, so the comparison is
only defined against one plan).
"""

import json
import math

import numpy as np
import pytest

from repro.core.scenario import frontier_spec
from repro.errors import ConfigurationError
from repro.fabric.timeflow import (ENSEMBLE_SHARED_AXES, CongestConfig,
                                   EnsembleEngine, FlowSpec, TimeflowConfig,
                                   TimeflowEngine, incast_pattern, run_congest,
                                   run_congest_grid)


@pytest.fixture(scope="module")
def net():
    return frontier_spec().scaled(8, 4, 4).build_network(rng=0)


def result_doc(result):
    """A result's full content, canonically serialised: any drifted bit
    (a sample, a percentile, a mark count, the peak queue) changes it."""
    return json.dumps({
        "classes": {c: v.to_doc() for c, v in result.classes.items()},
        "fct_samples": {c: v.tolist() for c, v in result.fct_samples.items()},
        "latency_samples": {c: v.tolist()
                            for c, v in result.latency_samples.items()},
        "mean_rates": result.mean_rates.tolist(),
        "max_queue_bytes": result.max_queue_bytes,
        "max_link_utilisation": result.max_link_utilisation,
        "marks": result.marks, "steps": result.steps,
    }, sort_keys=True, default=str)


def assert_oracle(engine, configs):
    """Every ensemble column == the scalar run of its config, bitwise."""
    ensemble = engine.run_ensemble(configs)
    assert len(ensemble) == len(configs)
    for i, cfg in enumerate(configs):
        assert result_doc(engine.run(cfg)) == result_doc(ensemble[i]), \
            f"column {i} drifted from the sequential oracle"


SHORT = dict(horizon_s=1e-4)


class TestEnsembleOracle:
    def test_k_sweep_with_fifo_and_ecn_columns(self, net):
        flows = incast_pattern(net, fanin=8, duty=1.0, elephants=2, rng=0)
        configs = [TimeflowConfig(ecn=False, **SHORT)] + [
            TimeflowConfig(ecn=True, ecn_k=float(k), **SHORT)
            for k in (5, 10, 30, 60)]
        assert_oracle(TimeflowEngine(net, flows, configs[0]), configs)

    def test_control_law_grid_columns(self, net):
        """backoff/growth/min-rate/warmup all vary per column."""
        flows = incast_pattern(net, fanin=6, duty=0.6, elephants=1, rng=1)
        configs = [
            TimeflowConfig(ecn=True, ecn_k=10.0, backoff=0.25, **SHORT),
            TimeflowConfig(ecn=True, ecn_k=10.0, backoff=0.75,
                           growth_frac=0.1, **SHORT),
            TimeflowConfig(ecn=True, ecn_k=40.0, min_rate_frac=0.2,
                           warmup_s=5e-5, **SHORT),
            TimeflowConfig(ecn=False, warmup_s=2e-5, **SHORT),
        ]
        assert_oracle(TimeflowEngine(net, flows, configs[0]), configs)

    def test_randomised_flow_mix(self, net):
        """Finite, repeating, bursty, and constant flows together."""
        rng = np.random.default_rng(42)
        eps = net.topology.n_endpoints
        flows = []
        for i in range(12):
            src, dst = rng.choice(eps, size=2, replace=False)
            kind = i % 4
            if kind == 0:
                flows.append(FlowSpec(src=int(src), dst=int(dst), cls="e"))
            elif kind == 1:
                flows.append(FlowSpec(
                    src=int(src), dst=int(dst), cls="f",
                    size_bytes=float(rng.integers(1, 80)) * 4096.0,
                    repeat=True))
            elif kind == 2:
                flows.append(FlowSpec(
                    src=int(src), dst=int(dst), cls="b",
                    burst_duty=float(rng.uniform(0.2, 0.9)),
                    burst_period_s=2e-5))
            else:
                flows.append(FlowSpec(
                    src=int(src), dst=int(dst), cls="f",
                    size_bytes=float(rng.integers(1, 30)) * 4096.0,
                    start_s=float(rng.uniform(0.0, 3e-5))))
        configs = [TimeflowConfig(ecn=True, ecn_k=float(k), **SHORT)
                   for k in (8, 24, 48)]
        configs.append(TimeflowConfig(ecn=False, **SHORT))
        assert_oracle(TimeflowEngine(net, flows, configs[0]), configs)

    def test_single_scenario_ensemble(self, net):
        flows = incast_pattern(net, fanin=4, rng=3)
        cfg = TimeflowConfig(ecn=True, ecn_k=20.0, **SHORT)
        assert_oracle(TimeflowEngine(net, flows, cfg), [cfg])

    def test_disjoint_on_windows(self, net):
        """Columns whose flows are never simultaneously active."""
        eps = net.topology.n_endpoints
        flows = [
            FlowSpec(src=0, dst=eps - 1, cls="a", size_bytes=8 * 4096.0,
                     start_s=0.0),
            FlowSpec(src=1, dst=eps - 2, cls="b", size_bytes=8 * 4096.0,
                     start_s=6e-5),
        ]
        configs = [TimeflowConfig(ecn=True, ecn_k=10.0, **SHORT),
                   TimeflowConfig(ecn=True, ecn_k=10.0, warmup_s=6e-5,
                                  **SHORT)]
        assert_oracle(TimeflowEngine(net, flows, configs[0]), configs)

    def test_zero_completion_column_yields_nan_stats(self, net):
        """A warmup past the horizon discards every completion; the
        column must flow through fct_stats as NaNs, not crash."""
        flows = incast_pattern(net, fanin=4, rng=5)
        configs = [TimeflowConfig(ecn=True, ecn_k=10.0, **SHORT),
                   TimeflowConfig(ecn=True, ecn_k=10.0, warmup_s=1.0,
                                  **SHORT)]
        engine = TimeflowEngine(net, flows, configs[0])
        assert_oracle(engine, configs)
        starved = engine.run_ensemble(configs)[1]
        victim = starved.cls("victim")
        assert victim.fct["n"] == 0.0
        assert math.isnan(victim.fct["p99"])


class TestEnsembleValidation:
    def test_empty_configs_rejected(self, net):
        flows = incast_pattern(net, fanin=4, rng=0)
        engine = TimeflowEngine(net, flows, TimeflowConfig(**SHORT))
        with pytest.raises(ConfigurationError):
            engine.run_ensemble([])
        with pytest.raises(ConfigurationError):
            EnsembleEngine(net, flows, [])

    @pytest.mark.parametrize("axis,value", [
        ("dt_s", 1e-7), ("horizon_s", 2e-4), ("mtu_bytes", 8192.0),
        ("control_interval_s", 1e-5), ("base_latency_s", 1e-6)])
    def test_shared_axis_mismatch_rejected(self, net, axis, value):
        assert axis in ENSEMBLE_SHARED_AXES
        flows = incast_pattern(net, fanin=4, rng=0)
        engine = TimeflowEngine(net, flows, TimeflowConfig(**SHORT))
        bad = TimeflowConfig(**{**SHORT, axis: value})
        with pytest.raises(ConfigurationError, match=axis):
            engine.run_ensemble([TimeflowConfig(**SHORT), bad])

    def test_ensemble_engine_runs_all_configs(self, net):
        flows = incast_pattern(net, fanin=4, rng=0)
        configs = [TimeflowConfig(ecn=True, ecn_k=10.0, **SHORT),
                   TimeflowConfig(ecn=False, **SHORT)]
        results = EnsembleEngine(net, flows, configs).run()
        assert len(results) == 2
        assert results[0].config.ecn and not results[1].config.ecn


class TestCongestConfigValidation:
    def test_duplicate_ks_deduped_in_order(self):
        cfg = CongestConfig(ks=(30, 10, 30, 60, 10))
        assert cfg.ks == (30, 10, 60)

    def test_sub_mtu_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            CongestConfig(ks=(10, 0))

    def test_no_arms_rejected(self):
        with pytest.raises(ConfigurationError):
            CongestConfig(ks=(), include_fifo=False)

    def test_fifo_only_study_allowed(self):
        assert CongestConfig(ks=(), include_fifo=True).ks == ()


class TestRunCongestEnsemble:
    @pytest.fixture(scope="class")
    def spec(self):
        return frontier_spec().scaled(8, 4, 4)

    @pytest.fixture(scope="class")
    def config(self):
        return CongestConfig(ks=(10.0, 60.0), horizon_s=1e-4)

    def test_ensemble_doc_equals_sequential_doc(self, spec, config):
        a = run_congest(spec, config)
        b = run_congest(spec, config, sequential=True)
        assert (json.dumps(a, sort_keys=True, default=str)
                == json.dumps(b, sort_keys=True, default=str))

    def test_grid_cells_match_sequential_runs(self, spec, config):
        grid = run_congest_grid(spec, config, backoffs=(0.25, 0.75))
        modes = [c["mode"] for c in grid["cells"]]
        assert modes[0] == "fifo"
        assert len(grid["cells"]) == 1 + 2 * 2   # fifo + |ks| x |backoffs|
        ecn = [c for c in grid["cells"] if c["mode"] == "ecn"]
        assert {(c["ecn_k"], c["backoff"]) for c in ecn} == \
            {(10.0, 0.25), (10.0, 0.75), (60.0, 0.25), (60.0, 0.75)}
        for cell in grid["cells"]:
            assert cell["victim_p99_s"] > 0.0
            assert cell["max_queue_mtus"] >= 0.0
