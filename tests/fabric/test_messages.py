"""NIC message-rate model tests — the §3.2 Slingshot-vs-EDR claims."""

import pytest

from repro.errors import ConfigurationError
from repro.fabric.messages import (EDR_NIC, SLINGSHOT_NIC, NicMessageModel,
                                   compare_slingshot_vs_edr)


class TestModel:
    def test_small_messages_rate_limited(self):
        bw = SLINGSHOT_NIC.achievable_bandwidth(8)
        assert bw == pytest.approx(8 * SLINGSHOT_NIC.message_rate)

    def test_large_messages_bandwidth_limited(self):
        bw = SLINGSHOT_NIC.achievable_bandwidth(1 << 22)
        assert bw == pytest.approx(25e9 * 0.70)

    def test_n_half_crossover(self):
        n_half = SLINGSHOT_NIC.half_bandwidth_size
        below = SLINGSHOT_NIC.achievable_bandwidth(n_half / 2)
        above = SLINGSHOT_NIC.achievable_bandwidth(n_half * 2)
        peak = 25e9 * 0.70
        assert below == pytest.approx(peak / 2)
        assert above == pytest.approx(peak)

    def test_sweep_monotone(self):
        rates = [bw for _, bw in SLINGSHOT_NIC.sweep()]
        assert rates == sorted(rates)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NicMessageModel("x", line_rate=0, message_rate=1e6,
                            protocol_efficiency=0.5, base_latency_s=1e-6,
                            tail_latency_s=2e-6)
        with pytest.raises(ConfigurationError):
            SLINGSHOT_NIC.achievable_bandwidth(0)


class TestSlingshotVsEdr:
    """§3.2: 'reduce average latency, reduce tail latency, improve
    bandwidth, and improve message rates'."""

    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_slingshot_vs_edr()

    def test_lower_average_latency(self, comparison):
        assert (comparison["Slingshot 11 (Cassini)"]["avg_latency_us"]
                < comparison["EDR InfiniBand"]["avg_latency_us"])

    def test_lower_tail_latency(self, comparison):
        assert (comparison["Slingshot 11 (Cassini)"]["tail_latency_us"]
                < comparison["EDR InfiniBand"]["tail_latency_us"])

    def test_higher_bandwidth(self, comparison):
        ss = comparison["Slingshot 11 (Cassini)"]["bandwidth_GBs"]
        edr = comparison["EDR InfiniBand"]["bandwidth_GBs"]
        assert ss == pytest.approx(2 * edr, rel=0.05)   # 200 vs 100 Gb/s

    def test_higher_message_rates(self, comparison):
        assert (comparison["Slingshot 11 (Cassini)"]["message_rate_M"]
                > 2 * comparison["EDR InfiniBand"]["message_rate_M"])

    def test_figure6_bandwidths_consistent(self):
        # the same protocol efficiencies feed the Figure 6 models
        assert SLINGSHOT_NIC.achievable_bandwidth(1 << 22) == pytest.approx(
            17.5e9)
        assert EDR_NIC.achievable_bandwidth(1 << 22) == pytest.approx(8.5e9)
