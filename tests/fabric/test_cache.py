"""Config-keyed topology memoization and the router path cache."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.fabric.cache import LruCache
from repro.fabric.dragonfly import DragonflyConfig, build_dragonfly
from repro.fabric.fattree import FatTreeConfig, build_fattree
from repro.fabric.network import (SlingshotNetwork, FatTreeNetwork,
                                  clear_fabric_caches)

SMALL = DragonflyConfig().scaled(6, 4, 4)


@pytest.fixture(autouse=True)
def _cold_caches():
    clear_fabric_caches()
    obs.registry().reset()
    yield
    clear_fabric_caches()


def _counter(name: str) -> float:
    snap = obs.registry().snapshot()
    return snap.get(name, {}).get("value", 0.0)


class TestLruCache:
    def test_get_put_and_eviction_order(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes "a"
        cache.put("c", 3)                   # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2 and "c" in cache

    def test_clear_empties(self):
        cache = LruCache(maxsize=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and cache.get("a") is None

    def test_maxsize_validated(self):
        with pytest.raises(ConfigurationError):
            LruCache(maxsize=0)


class TestTopologyMemo:
    def test_same_config_returns_same_topology(self):
        assert build_dragonfly(SMALL) is build_dragonfly(SMALL)
        ft = FatTreeConfig(4, 4)
        assert build_fattree(ft) is build_fattree(ft)

    def test_equal_configs_share_one_entry(self):
        a = DragonflyConfig().scaled(6, 4, 4)
        b = DragonflyConfig().scaled(6, 4, 4)
        assert a is not b
        assert build_dragonfly(a) is build_dragonfly(b)

    def test_different_configs_do_not_collide(self):
        other = DragonflyConfig().scaled(8, 4, 4)
        assert build_dragonfly(SMALL) is not build_dragonfly(other)

    def test_hit_miss_counters(self):
        obs.enable(tracing=False)
        try:
            build_dragonfly(SMALL)
            build_dragonfly(SMALL)
            build_dragonfly(DragonflyConfig().scaled(8, 4, 4))
        finally:
            obs.disable()
        assert _counter("fabric.topology_cache.misses") == 2.0
        assert _counter("fabric.topology_cache.hits") == 1.0

    def test_use_cache_false_bypasses(self):
        cached = build_dragonfly(SMALL)
        fresh = build_dragonfly(SMALL, use_cache=False)
        assert fresh is not cached

    def test_clear_fabric_caches_forces_rebuild(self):
        before = build_dragonfly(SMALL)
        clear_fabric_caches()
        assert build_dragonfly(SMALL) is not before

    def test_networks_share_cached_topology_but_not_routers(self):
        a = SlingshotNetwork(SMALL, rng=0)
        b = SlingshotNetwork(SMALL, rng=0)
        assert a.topology is b.topology
        assert a.router is not b.router
        ft = FatTreeConfig(4, 4)
        assert FatTreeNetwork(ft).topology is FatTreeNetwork(ft).topology


class TestPathCache:
    def test_unregistered_queries_hit_after_first(self):
        net = SlingshotNetwork(SMALL, rng=0)
        obs.enable(tracing=False)
        try:
            p1 = net.router.path(0, 40, register=False)
            p2 = net.router.path(0, 40, register=False)
        finally:
            obs.disable()
        assert p1 == p2
        assert _counter("fabric.path_cache.misses") == 1.0
        assert _counter("fabric.path_cache.hits") == 1.0

    def test_cached_path_is_a_private_copy(self):
        net = SlingshotNetwork(SMALL, rng=0)
        p1 = net.router.path(0, 40, register=False)
        p1.append(999)
        assert net.router.path(0, 40, register=False)[-1] != 999

    def test_registered_paths_never_cached(self):
        net = SlingshotNetwork(SMALL, rng=0)
        obs.enable(tracing=False)
        try:
            net.router.path(0, 40)
            net.router.path(0, 40)
        finally:
            obs.disable()
        assert _counter("fabric.path_cache.hits") == 0.0
        assert _counter("fabric.path_cache.misses") == 0.0

    def test_disable_link_invalidates(self):
        net = SlingshotNetwork(SMALL, rng=0)
        obs.enable(tracing=False)
        try:
            p1 = net.router.path(0, 40, register=False)
            # fail a mid-path fabric link (not the injection/ejection edges,
            # which would cut the endpoints off entirely)
            net.router.disable_link(p1[1])
            p2 = net.router.path(0, 40, register=False)
        finally:
            obs.disable()
        assert p1[1] not in p2
        assert _counter("fabric.path_cache.misses") == 2.0
        assert _counter("fabric.path_cache.hits") == 0.0

    def test_reset_load_invalidates(self):
        net = SlingshotNetwork(SMALL, rng=0)
        obs.enable(tracing=False)
        try:
            net.router.path(0, 40, register=False)
            net.router.reset_load()
            net.router.path(0, 40, register=False)
        finally:
            obs.disable()
        assert _counter("fabric.path_cache.misses") == 2.0

    def test_fat_tree_router_caches_too(self):
        net = FatTreeNetwork(FatTreeConfig(4, 4), rng=0)
        obs.enable(tracing=False)
        try:
            p1 = net.router.path(0, 9, register=False)
            p2 = net.router.path(0, 9, register=False)
        finally:
            obs.disable()
        assert p1 == p2
        assert _counter("fabric.path_cache.hits") == 1.0

    def test_flow_results_unaffected_by_path_cache(self):
        pairs = [(i, (i + 8) % SMALL.total_endpoints)
                 for i in range(SMALL.total_endpoints)]
        a, _ = SlingshotNetwork(SMALL, rng=0).flow_bandwidths(pairs)
        b, _ = SlingshotNetwork(SMALL, rng=0).flow_bandwidths(pairs)
        assert [f.bandwidth for f in a] == [f.bandwidth for f in b]
