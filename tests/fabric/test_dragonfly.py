"""Dragonfly builder tests — the §3.2 derived quantities."""

import pytest

from repro.errors import TopologyError
from repro.fabric.dragonfly import DragonflyConfig, build_dragonfly
from repro.fabric.topology import LinkKind


class TestFrontierDerivedQuantities:
    """Every §3.2 number must fall out of the configuration."""

    def setup_method(self):
        self.cfg = DragonflyConfig()

    def test_74_compute_groups_of_32_switches(self):
        assert self.cfg.groups == 74
        assert self.cfg.switches_per_group == 32
        assert self.cfg.total_switches == 2368

    def test_512_endpoints_per_group(self):
        assert self.cfg.endpoints_per_group == 512

    def test_37888_total_endpoints(self):
        # 9,472 nodes x 4 NICs
        assert self.cfg.total_endpoints == 37888

    def test_injection_bandwidth_12_8_tbs_per_group(self):
        assert self.cfg.injection_bandwidth_per_group == pytest.approx(12.8e12)

    def test_global_bandwidth_7_3_tbs_per_group(self):
        assert self.cfg.global_bandwidth_per_group == pytest.approx(7.3e12)

    def test_taper_is_57_pct(self):
        assert self.cfg.taper == pytest.approx(0.5703, abs=0.001)

    def test_total_global_bandwidth_270_1_tbs(self):
        # "The total global bandwidth between the compute groups is
        # 270+270 TB/s" / "the available 270.1 TB/s global bandwidth"
        assert self.cfg.total_global_bandwidth == pytest.approx(270.1e12,
                                                                rel=0.001)

    def test_bundle_of_two_cables_is_four_links(self):
        assert self.cfg.global_links_per_pair == 4

    def test_l2_port_budget_respected(self):
        per_switch = (self.cfg.global_link_endpoints_per_group
                      / self.cfg.switches_per_group)
        assert per_switch <= self.cfg.l2_ports


class TestValidation:
    def test_too_few_groups(self):
        with pytest.raises(TopologyError):
            DragonflyConfig(groups=1)

    def test_l1_port_overflow(self):
        with pytest.raises(TopologyError):
            DragonflyConfig(switches_per_group=40, l1_ports=32)

    def test_l2_port_overflow(self):
        with pytest.raises(TopologyError):
            DragonflyConfig(groups=74, global_links_per_pair=10, l2_ports=16)

    def test_global_attach_rejects_same_group(self):
        with pytest.raises(TopologyError):
            DragonflyConfig().global_attach(3, 3, 0)

    def test_global_attach_rejects_bad_lane(self):
        with pytest.raises(TopologyError):
            DragonflyConfig().global_attach(0, 1, 99)


class TestScaledConfig:
    def test_taper_is_preserved_approximately(self):
        small = DragonflyConfig().scaled(8, 4, 4)
        assert small.taper == pytest.approx(DragonflyConfig().taper, abs=0.15)

    def test_structure(self):
        small = DragonflyConfig().scaled(6, 4, 2)
        assert small.groups == 6
        assert small.endpoints_per_group == 8


class TestBuiltTopology:
    @pytest.fixture(scope="class")
    def built(self):
        cfg = DragonflyConfig().scaled(6, 4, 3)
        return cfg, build_dragonfly(cfg)

    def test_counts(self, built):
        cfg, topo = built
        assert topo.n_switches == cfg.total_switches
        assert topo.n_endpoints == cfg.total_endpoints

    def test_intra_group_full_mesh(self, built):
        cfg, topo = built
        for g in range(cfg.groups):
            switches = topo.switches_in_group(g)
            for i, a in enumerate(switches):
                for b in switches[i + 1:]:
                    assert topo.link_between(("sw", a), ("sw", b)) is not None

    def test_every_group_pair_connected_globally(self, built):
        cfg, topo = built
        # capacity between each group pair sums to the bundle capacity
        for g in range(cfg.groups):
            for h in range(g + 1, cfg.groups):
                cap = 0.0
                for a in topo.switches_in_group(g):
                    for b in topo.switches_in_group(h):
                        link = topo.link_between(("sw", a), ("sw", b))
                        if link is not None:
                            assert link.kind is LinkKind.L2
                            cap += link.capacity
                assert cap == pytest.approx(
                    cfg.global_links_per_pair * cfg.link_rate)

    def test_endpoints_per_switch(self, built):
        cfg, topo = built
        for sw in topo.switches():
            assert len(topo.endpoints_on_switch(sw)) == cfg.endpoints_per_switch

    def test_direct_network_every_switch_has_endpoints(self, built):
        # "The dragonfly topology is a *direct* network"
        cfg, topo = built
        for sw in topo.switches():
            assert topo.endpoints_on_switch(sw)
