"""Congestion-control model tests (Table 5's mechanism)."""

import pytest

from repro.errors import ConfigurationError
from repro.fabric.congestion import CongestionControl


@pytest.fixture()
def cc() -> CongestionControl:
    return CongestionControl()


class TestProtection:
    def test_8ppn_impact_is_essentially_one(self, cc):
        # The paper's headline: congested == isolated at 8 PPN.
        imp = cc.impact(victim_load=0.15, congestor_load=0.9,
                        ranks_per_nic=2.0)
        assert imp.latency_avg == pytest.approx(1.0, abs=0.05)
        assert imp.bandwidth == pytest.approx(1.0, abs=0.02)

    def test_32ppn_average_impact_in_paper_band(self, cc):
        # 1.2x-1.6x average degradation at 32 PPN.
        imp = cc.impact(victim_load=0.15, congestor_load=0.9,
                        ranks_per_nic=8.0)
        assert 1.1 <= imp.latency_avg <= 1.7

    def test_32ppn_tail_impact_in_paper_band(self, cc):
        # 1.8x-7.6x at the 99th percentile.
        imp = cc.impact(victim_load=0.15, congestor_load=0.9,
                        ranks_per_nic=8.0)
        assert 1.8 <= imp.latency_p99 <= 7.6

    def test_disabling_cc_is_much_worse(self, cc):
        off = CongestionControl(enabled=False)
        with_cc = cc.impact(victim_load=0.15, congestor_load=0.9)
        without = off.impact(victim_load=0.15, congestor_load=0.9)
        assert without.latency_avg > 2 * with_cc.latency_avg
        assert without.bandwidth < with_cc.bandwidth

    def test_protection_dilutes_with_nic_sharing(self, cc):
        assert (cc.effective_protection(2.0)
                < cc.effective_protection(4.0)
                < cc.effective_protection(8.0))
        assert cc.effective_protection(2.0) == pytest.approx(
            cc.victim_queue_protection)

    def test_protection_caps_at_one(self, cc):
        assert cc.effective_protection(1000.0) == 1.0


class TestEndpointLoad:
    def test_8ppn_two_ranks_per_nic(self, cc):
        load = cc.endpoint_load(8, 5e9)
        assert load == pytest.approx(2 * 5e9 / 25e9)

    def test_load_clipped_below_one(self, cc):
        assert cc.endpoint_load(32, 25e9) < 1.0

    def test_invalid_inputs(self, cc):
        with pytest.raises(ConfigurationError):
            cc.endpoint_load(0, 1e9)
        with pytest.raises(ConfigurationError):
            cc.impact(victim_load=-0.1, congestor_load=0.5)
        with pytest.raises(ConfigurationError):
            cc.effective_protection(0.0)
        with pytest.raises(ConfigurationError):
            CongestionControl(victim_queue_protection=1.5)


class TestMonotonicity:
    def test_more_congestors_never_help(self, cc):
        imps = [cc.impact(victim_load=0.2, congestor_load=c,
                          ranks_per_nic=8.0).latency_avg
                for c in (0.0, 0.3, 0.6, 0.9)]
        assert imps == sorted(imps)

    def test_zero_congestion_is_identity(self, cc):
        imp = cc.impact(victim_load=0.3, congestor_load=0.0)
        assert imp.latency_avg == 1.0
        assert imp.latency_p99 == 1.0
        assert imp.bandwidth == 1.0

    def test_impacts_never_below_one(self, cc):
        imp = cc.impact(victim_load=0.9, congestor_load=0.01)
        assert imp.latency_avg >= 1.0
        assert imp.latency_p99 >= 1.0
        assert imp.bandwidth <= 1.0
