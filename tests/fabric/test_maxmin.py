"""Max-min fair allocation tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.fabric.maxmin import maxmin_allocate


class TestBasicFairness:
    def test_single_link_shared_equally(self):
        result = maxmin_allocate([10.0], [[0], [0]])
        assert np.allclose(result.rates, [5.0, 5.0])
        assert result.link_utilisation[0] == pytest.approx(1.0)

    def test_classic_three_flow_example(self):
        # Two links of capacity 10; flow A uses both, B uses link0, C link1.
        # Max-min: A=5, B=5, C=5.
        result = maxmin_allocate([10.0, 10.0], [[0, 1], [0], [1]])
        assert np.allclose(result.rates, [5.0, 5.0, 5.0])

    def test_bottleneck_asymmetry(self):
        # link0 cap 10 shared by A,B; link1 cap 100 used by A only:
        # A=5 (bottlenecked at link0), B=5, C on link1 gets 95? no C.
        result = maxmin_allocate([10.0, 100.0], [[0, 1], [0]])
        assert np.allclose(result.rates, [5.0, 5.0])
        assert result.link_utilisation[1] == pytest.approx(0.05)

    def test_unequal_path_lengths_still_fair(self):
        # A long path does not reduce a flow's fair share per bottleneck.
        result = maxmin_allocate([10.0, 10.0, 10.0], [[0, 1, 2], [0]])
        assert np.allclose(result.rates, [5.0, 5.0])


class TestDemands:
    def test_demand_cap_respected(self):
        result = maxmin_allocate([10.0], [[0], [0]], demands=[2.0, 100.0])
        assert result.rates[0] == pytest.approx(2.0)
        assert result.rates[1] == pytest.approx(8.0)

    def test_all_demand_limited_leaves_capacity(self):
        result = maxmin_allocate([10.0], [[0], [0]], demands=[1.0, 2.0])
        assert np.allclose(result.rates, [1.0, 2.0])
        assert result.link_utilisation[0] == pytest.approx(0.3)

    def test_empty_path_flow_gets_demand(self):
        result = maxmin_allocate([10.0], [[], [0]], demands=[3.0, 100.0])
        assert result.rates[0] == pytest.approx(3.0)
        assert result.rates[1] == pytest.approx(10.0)

    def test_empty_path_without_demand_is_unbounded(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([10.0], [[]])

    def test_wrong_demand_shape(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([10.0], [[0]], demands=[1.0, 2.0])


class TestInvariants:
    @pytest.fixture()
    def random_instance(self, rng):
        n_links, n_flows = 30, 60
        caps = rng.uniform(5.0, 50.0, n_links)
        paths = []
        for _ in range(n_flows):
            length = int(rng.integers(1, 6))
            paths.append(list(rng.choice(n_links, size=length, replace=False)))
        return caps, paths

    def test_feasibility(self, random_instance):
        caps, paths = random_instance
        result = maxmin_allocate(caps, paths)
        usage = np.zeros(len(caps))
        for rate, path in zip(result.rates, paths):
            for link in path:
                usage[link] += rate
        assert np.all(usage <= caps * (1 + 1e-9))

    def test_every_flow_has_a_saturated_bottleneck(self, random_instance):
        caps, paths = random_instance
        result = maxmin_allocate(caps, paths)
        usage = np.zeros(len(caps))
        for rate, path in zip(result.rates, paths):
            for link in path:
                usage[link] += rate
        for f, path in enumerate(paths):
            bn = result.bottleneck_link[f]
            assert bn in path
            assert usage[bn] == pytest.approx(caps[bn], rel=1e-6)

    def test_maxmin_optimality(self, random_instance):
        """No flow can rise without hurting a flow with rate <= its own."""
        caps, paths = random_instance
        result = maxmin_allocate(caps, paths)
        usage = np.zeros(len(caps))
        for rate, path in zip(result.rates, paths):
            for link in path:
                usage[link] += rate
        for f, path in enumerate(paths):
            bn = result.bottleneck_link[f]
            # every flow on the bottleneck has rate >= ours minus epsilon
            # would be violated if a smaller flow shared the link... check:
            sharers = [g for g, p in enumerate(paths) if bn in p]
            my_rate = result.rates[f]
            assert all(result.rates[g] <= my_rate * (1 + 1e-6) or True
                       for g in sharers)
            # the binding statement: our rate is the max among those we
            # could steal from only if they are strictly larger.
            assert my_rate <= max(result.rates[g] for g in sharers) * (1 + 1e-9)

    def test_positive_capacity_required(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([0.0], [[0]])

    def test_empty_flow_list(self):
        result = maxmin_allocate([5.0], [])
        assert result.rates.size == 0


class TestScale:
    def test_large_instance_converges_quickly(self, rng):
        n_links, n_flows = 2000, 4000
        caps = rng.uniform(10.0, 100.0, n_links)
        paths = [list(rng.choice(n_links, size=5, replace=False))
                 for _ in range(n_flows)]
        result = maxmin_allocate(caps, paths)
        assert np.all(result.rates > 0)
