"""Collective model tests (allreduce latency, all-to-all bandwidth)."""

import pytest

from repro.errors import ConfigurationError
from repro.fabric.collectives import (allreduce_latency,
                                      alltoall_per_node_bandwidth)


class TestAllreduce:
    def test_paper_51_5_usec_at_75200_ranks(self):
        # Table 5: Multiple Allreduce (8 B) average 51.5 usec at 9,400
        # nodes x 8 PPN.
        t = allreduce_latency(9400 * 8)
        assert t == pytest.approx(51.5e-6, rel=0.05)

    def test_log_scaling(self):
        t1 = allreduce_latency(1024)
        t2 = allreduce_latency(1024 * 1024)
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_single_rank_is_free(self):
        assert allreduce_latency(1) == 0.0

    def test_invalid_rank_count(self):
        with pytest.raises(ConfigurationError):
            allreduce_latency(0)

    def test_monotone_in_ranks(self):
        vals = [allreduce_latency(n) for n in (2, 64, 4096, 75200)]
        assert vals == sorted(vals)


class TestAllToAll:
    def test_paper_30_32_gbs_per_node(self):
        # §4.2.2: "~30-32 GB/s/node (~7.5-8.0 GB/s/NIC) ... 128 KiB"
        est = alltoall_per_node_bandwidth()
        assert 28e9 <= est.per_node <= 33e9
        assert 7.0e9 <= est.per_nic <= 8.3e9

    def test_global_bandwidth_is_the_binding_constraint(self):
        # The 57% taper makes global bandwidth bind at full system size.
        est = alltoall_per_node_bandwidth()
        assert est.binding_constraint == "global"

    def test_small_job_is_injection_limited(self):
        est = alltoall_per_node_bandwidth(nodes=128)
        assert est.binding_constraint == "injection"
        assert est.per_node == pytest.approx(4 * 25e9, rel=0.05)

    def test_small_messages_degrade(self):
        big = alltoall_per_node_bandwidth(message_bytes=128 * 1024)
        small = alltoall_per_node_bandwidth(message_bytes=512)
        assert small.per_node < 0.5 * big.per_node

    def test_service_groups_add_capacity(self):
        with_svc = alltoall_per_node_bandwidth(include_service_groups=True)
        without = alltoall_per_node_bandwidth(include_service_groups=False)
        assert with_svc.per_node > without.per_node

    def test_intra_fraction_matches_group_size(self):
        est = alltoall_per_node_bandwidth()
        # 127 of 9471 peers are in-group: ~1.34%
        assert est.intra_fraction == pytest.approx(127 / 9471, rel=1e-6)

    def test_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            alltoall_per_node_bandwidth(nodes=1)
