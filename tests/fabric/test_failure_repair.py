"""Failure/repair surface: disable -> route -> enable -> route, both backends.

The chaos engine's contract with the fabric facade: ``disable_link``
makes routing avoid the link, ``enable_link`` returns it to service
*and invalidates the same caches* (path LRU + batch planner state), so a
repaired link is actually used again — on the Slingshot dragonfly and
the fat-tree comparison system alike, through the scalar and the batch
planners.
"""

import pytest

from repro.errors import RoutingError
from repro.fabric.dragonfly import DragonflyConfig
from repro.fabric.fattree import FatTreeConfig
from repro.fabric.network import FatTreeNetwork, SlingshotNetwork
from repro.fabric.routing import RoutingPolicy

DF_CFG = DragonflyConfig().scaled(8, 4, 4)
FT_CFG = FatTreeConfig(edge_switches=8, endpoints_per_edge=8)


def dragonfly() -> SlingshotNetwork:
    # MINIMAL keeps paths load-independent, so repair must restore them.
    return SlingshotNetwork(DF_CFG, policy=RoutingPolicy.MINIMAL, rng=0)


def fattree() -> FatTreeNetwork:
    return FatTreeNetwork(FT_CFG, rng=0)


def scalar(net, src, dst):
    return net.router.path(src, dst, register=False)


def batch(net, pairs):
    return net.router.paths(pairs, register=False).to_lists()


@pytest.mark.parametrize("build", [dragonfly, fattree],
                         ids=["dragonfly", "fattree"])
class TestDisableRouteEnableRoute:
    def test_scalar_roundtrip(self, build):
        net = build()
        dst = net.config.total_endpoints - 1
        before = scalar(net, 0, dst)
        trunk = next(i for i in before
                     if net.topology.flat.link_kind[i] > 0)
        net.disable_link(trunk)
        assert net.disabled_links == {trunk}
        rerouted = scalar(net, 0, dst)
        assert trunk not in rerouted
        net.enable_link(trunk)
        assert net.disabled_links == frozenset()
        assert scalar(net, 0, dst) == before    # repair restores the route

    def test_batch_roundtrip(self, build):
        net = build()
        n = net.config.total_endpoints
        pairs = [(0, n - 1)] + [(i, (i + 9) % n) for i in range(0, n, 7)]
        before = batch(net, pairs)
        trunk = next(i for i in before[0]
                     if net.topology.flat.link_kind[i] > 0)
        net.disable_link(trunk)
        rerouted = batch(net, pairs)
        assert all(trunk not in p for p in rerouted)
        net.enable_link(trunk)
        assert batch(net, pairs) == before

    def test_batch_agrees_with_scalar_under_failure(self, build):
        net = build()
        n = net.config.total_endpoints
        dst = n - 1
        trunk = next(i for i in scalar(net, 0, dst)
                     if net.topology.flat.link_kind[i] > 0)
        net.disable_link(trunk)
        planned = batch(net, [(0, dst)])[0]
        assert planned == scalar(net, 0, dst)

    def test_unknown_link_rejected(self, build):
        net = build()
        with pytest.raises(RoutingError):
            net.disable_link(net.topology.n_links)

    def test_enable_is_idempotent(self, build):
        net = build()
        net.disable_link(0)
        net.enable_link(0)
        net.enable_link(0)                       # repairing twice is fine
        assert net.disabled_links == frozenset()


@pytest.mark.parametrize("build", [dragonfly, fattree],
                         ids=["dragonfly", "fattree"])
class TestNodeFailureRepair:
    def test_dead_node_unreachable_others_unaffected(self, build):
        net = build()
        dst = net.config.total_endpoints - 1
        alive = scalar(net, 8, dst)
        net.disable_node(3)
        assert net.disabled_nodes == {3}
        with pytest.raises(RoutingError):
            scalar(net, 3, dst)
        with pytest.raises(RoutingError):
            scalar(net, dst, 3)
        assert scalar(net, 8, dst) == alive

    def test_batch_raises_on_dead_endpoint(self, build):
        net = build()
        dst = net.config.total_endpoints - 1
        net.disable_node(3)
        with pytest.raises(RoutingError):
            batch(net, [(3, dst)])

    def test_repair_restores_service(self, build):
        net = build()
        dst = net.config.total_endpoints - 1
        before = scalar(net, 3, dst)
        net.disable_node(3)
        net.disable_node(3)                      # idempotent failure
        net.enable_node(3)
        assert net.disabled_nodes == set()
        assert net.disabled_links == frozenset()
        assert scalar(net, 3, dst) == before

    def test_multi_nic_node_maps_to_endpoint_block(self, build):
        net = build()
        net.nics_per_node = 4
        assert list(net.node_endpoints(2)) == [8, 9, 10, 11]
        net.disable_node(2)
        with pytest.raises(RoutingError):
            scalar(net, 9, net.config.total_endpoints - 1)
        net.enable_node(2)
        assert net.disabled_links == frozenset()


class TestFatTreeSpecifics:
    def test_dead_uplink_drops_out_of_ecmp(self):
        net = fattree()
        before = scalar(net, 0, 60)
        up = before[1]
        net.disable_link(up)
        rerouted = scalar(net, 0, 60)
        assert up not in rerouted and len(rerouted) == 4
        assert batch(net, [(0, 60)])[0] == rerouted

    def test_dead_edge_link_raises_scalar_and_batch(self):
        net = fattree()
        edge = scalar(net, 0, 60)[0]
        net.disable_link(edge)
        with pytest.raises(RoutingError):
            scalar(net, 0, 60)
        with pytest.raises(RoutingError):
            batch(net, [(0, 60)])

    def test_edge_switch_with_no_surviving_uplinks(self):
        net = fattree()
        flat = net.topology.flat
        E = FT_CFG.edge_switches
        ups = [link.index for link in net.topology.out_links(("sw", 0))
               if link.dst[0] == "sw" and link.dst[1] >= E]
        for index in ups:
            net.disable_link(index)
        with pytest.raises(RoutingError, match="surviving uplinks"):
            scalar(net, 0, 60)
        net.enable_link(ups[0])                  # one repair is enough
        assert len(scalar(net, 0, 60)) == 4
        assert flat.link_kind[ups[0]] > 0
