"""The fluid time-stepped congestion engine (repro.fabric.timeflow)."""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.core.scenario import frontier_spec
from repro.errors import ConfigurationError
from repro.fabric.maxmin import maxmin_allocate
from repro.fabric.timeflow import (CongestConfig, FlowSpec, TimeflowConfig,
                                   TimeflowEngine, congest_run_id, fct_stats,
                                   incast_pattern, load_congest_artifact,
                                   run_congest, run_congest_cached,
                                   validate_victim_impact)


@pytest.fixture(scope="module")
def net():
    return frontier_spec().scaled(8, 4, 4).build_network(rng=0)


class TestFlowSpec:
    def test_defaults_make_an_elephant(self):
        f = FlowSpec(src=0, dst=1)
        assert f.size_bytes is None and not f.repeat

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(src=0, dst=1, size_bytes=0.0)

    def test_rejects_bad_duty(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(src=0, dst=1, burst_duty=0.0)
        with pytest.raises(ConfigurationError):
            FlowSpec(src=0, dst=1, burst_duty=1.5, burst_period_s=1e-5)

    def test_bursty_needs_a_period(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(src=0, dst=1, burst_duty=0.5)

    def test_only_finite_flows_repeat(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(src=0, dst=1, repeat=True)


class TestFctStats:
    """The percentile-extraction edge cases the issue pins down."""

    def test_zero_completed_flows_yield_nans_not_errors(self):
        stats = fct_stats([])
        assert stats["n"] == 0.0
        assert math.isnan(stats["mean"])
        assert math.isnan(stats["p50"]) and math.isnan(stats["p99"])

    def test_single_packet_flow_is_every_percentile(self):
        stats = fct_stats([3.5e-6])
        assert stats["n"] == 1.0
        assert stats["p50"] == stats["p99"] == stats["mean"] == 3.5e-6

    def test_tied_completion_times_collapse_to_the_tie(self):
        stats = fct_stats([2e-6] * 40)
        assert stats["p50"] == stats["p99"] == 2e-6

    def test_p99_with_fewer_than_100_samples_interpolates(self):
        # 10 samples: p99 must land between the two largest order
        # statistics, not fail and not simply clamp to the max.
        samples = list(range(1, 11))
        stats = fct_stats(samples)
        assert 9.0 < stats["p99"] < 10.0
        assert stats["p50"] == 5.5

    def test_json_serialisable_even_when_empty(self):
        # NaN survives json.dumps (allow_nan default); artifact writers
        # rely on this for congested-to-death arms.
        assert "NaN" in json.dumps(fct_stats([]))


class TestEngine:
    def test_needs_at_least_one_flow(self, net):
        with pytest.raises(ConfigurationError):
            TimeflowEngine(net, [])

    def test_uncongested_flow_completes_at_line_rate(self, net):
        # One 1 MiB flow on an idle fabric: no queueing, FCT is the
        # serialisation time at peak efficiency plus base latency.
        size = float(1 << 20)
        cfg = TimeflowConfig(dt_s=1e-7, horizon_s=3e-4)
        eng = TimeflowEngine(net, [FlowSpec(src=0, dst=40,
                                            size_bytes=size)], cfg)
        result = eng.run()
        rep = result.cls("bulk")
        assert rep.completed == 1
        expected = size / eng.peak[0] + eng.base_latency[0]
        assert rep.fct["p50"] == pytest.approx(expected, rel=0.05)
        assert result.marks == 0
        assert result.max_queue_bytes == 0.0

    def test_deterministic_given_identical_inputs(self, net):
        flows = incast_pattern(net, fanin=4, elephants=2, rng=7)
        cfg = TimeflowConfig(horizon_s=1e-4)
        a = TimeflowEngine(net, flows, cfg).run()
        b = TimeflowEngine(net, flows, cfg).run()
        # json round-trip so identical NaNs (empty FCT classes) compare
        assert json.dumps(a.to_doc(), sort_keys=True) \
            == json.dumps(b.to_doc(), sort_keys=True)
        np.testing.assert_array_equal(a.mean_rates, b.mean_rates)

    def test_duty_cycle_halves_delivered_bytes(self, net):
        def bytes_at(duty):
            flows = [FlowSpec(src=0, dst=40, burst_duty=duty,
                              burst_period_s=2e-5 if duty < 1 else None)]
            cfg = TimeflowConfig(horizon_s=2e-4, ecn=False)
            return TimeflowEngine(net, flows, cfg).run() \
                .cls("bulk").bytes_injected

        assert bytes_at(0.5) == pytest.approx(0.5 * bytes_at(1.0), rel=0.05)

    def test_emits_timeflow_counters(self, net):
        obs.enable()
        try:
            flows = incast_pattern(net, fanin=4, rng=0)
            TimeflowEngine(net, flows, TimeflowConfig(horizon_s=5e-5)).run()
            snap = obs.registry().snapshot()
            metrics = {name: doc.get("value", doc.get("count", 0.0))
                       for name, doc in snap.items()}
        finally:
            obs.disable()
            obs.reset()
        assert metrics["fabric.timeflow.steps"] == 1000
        assert metrics["fabric.timeflow.flows"] == 5
        assert metrics["fabric.timeflow.completions"] > 0
        assert metrics["fabric.timeflow.marks"] > 0


class TestIncastPattern:
    def test_classes_and_fanin(self, net):
        flows = incast_pattern(net, fanin=6, elephants=3, rng=0)
        by_cls = {}
        for f in flows:
            by_cls.setdefault(f.cls, []).append(f)
        assert len(by_cls["congestor"]) == 6
        assert len(by_cls["victim"]) == 1
        assert len(by_cls["elephant"]) == 3
        # all congestors and the victim aim at the target endpoint
        assert {f.dst for f in by_cls["congestor"]} == {0}
        assert by_cls["victim"][0].dst == 0
        assert by_cls["victim"][0].repeat

    def test_senders_are_off_switch(self, net):
        flows = incast_pattern(net, fanin=6, rng=0)
        flat = net.topology.flat
        target_switch = int(flat.endpoint_switch[0])
        for f in flows:
            assert int(flat.endpoint_switch[f.src]) != target_switch

    def test_oversized_fanin_rejected(self, net):
        with pytest.raises(ConfigurationError):
            incast_pattern(net, fanin=10_000)


class TestGpcnetShape:
    """The acceptance criterion: FIFO tails explode, ECN tails bound."""

    @pytest.fixture(scope="class")
    def arms(self, net):
        flows = incast_pattern(net, fanin=8, elephants=2, rng=0)
        out = {}
        for name, ecn in (("fifo", False), ("ecn", True)):
            cfg = TimeflowConfig(ecn=ecn, ecn_k=30.0, warmup_s=1e-4)
            out[name] = TimeflowEngine(net, flows, cfg).run()
        return out

    def test_fifo_victim_tail_explodes(self, arms):
        fifo = arms["fifo"].cls("victim").latency
        ecn = arms["ecn"].cls("victim").latency
        assert fifo["p99"] >= 2.0 * ecn["p99"]

    def test_ecn_keeps_the_queue_near_the_threshold(self, arms):
        # FIFO queues grow two orders of magnitude past where the ECN
        # loop pins them; the ECN sawtooth overshoots k but stays the
        # same order of magnitude.
        assert arms["fifo"].max_queue_bytes \
            > 10.0 * arms["ecn"].max_queue_bytes

    def test_ecn_marks_fifo_does_not(self, arms):
        assert arms["fifo"].marks == 0
        assert arms["ecn"].marks > 0

    def test_k_sweep_tail_is_monotone(self, net):
        flows = incast_pattern(net, fanin=8, elephants=2, rng=0)
        tails = []
        for k in (10, 30, 60):
            cfg = TimeflowConfig(ecn=True, ecn_k=float(k), warmup_s=1e-4)
            result = TimeflowEngine(net, flows, cfg).run()
            tails.append(result.cls("victim").latency["p99"])
        assert tails[0] < tails[1] < tails[2]


class TestSteadyStateCrossValidation:
    def test_analytic_victim_impact_within_15pct(self):
        val = validate_victim_impact()
        assert val.ok, (f"measured {val.measured:.3f} vs analytic "
                        f"{val.analytic:.3f} (ratio {val.ratio:.3f})")
        assert val.samples > 50

    def test_impossible_burst_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_victim_impact(victim_load=0.1, congestor_load=0.2,
                                   duty=1.0)

    def test_aimd_converges_on_maxmin_fair_share(self, net):
        # Constant elephants into one endpoint: the ECN loop's
        # time-averaged rates must agree with the max-min allocation of
        # the identical CSR path set (single bottleneck: cap / N each).
        flat = net.topology.flat
        target_switch = int(flat.endpoint_switch[0])
        senders = [ep for ep in range(net.config.total_endpoints)
                   if int(flat.endpoint_switch[ep]) != target_switch][:4]
        flows = [FlowSpec(src=s, dst=0) for s in senders]
        eng = TimeflowEngine(net, flows, TimeflowConfig(horizon_s=5e-4))
        result = eng.run()
        fair = maxmin_allocate(eng.caps, eng.paths,
                               np.full(len(flows), np.inf)).rates
        ratios = result.mean_rates / fair
        assert np.all(np.abs(ratios - 1.0) <= 0.20)
        # fairness: synchronized AIMD keeps the flows within 10%
        assert result.mean_rates.max() \
            <= 1.10 * result.mean_rates.min()


class TestCongestStudy:
    def test_run_congest_orders_arms_and_summarises(self):
        doc = run_congest(frontier_spec().scaled(8, 4, 4),
                          CongestConfig(ks=(10, 60), horizon_s=1e-4))
        assert [a["mode"] for a in doc["arms"]] == ["fifo", "ecn", "ecn"]
        assert set(doc["fifo_vs_ecn_p99"]) == {"10", "60"}
        assert all(r > 1.0 for r in doc["fifo_vs_ecn_p99"].values())
        assert doc["status"] == "ok"

    def test_full_scale_spec_reduces_automatically(self):
        config = CongestConfig(ks=(), include_fifo=True, horizon_s=2e-5)
        doc = run_congest(frontier_spec(), config)
        assert "scaled" in doc["network"]
        # ... but the artifact identity is the requested spec
        assert doc["spec"]["name"] == "frontier"

    def test_cached_run_resumes(self, tmp_path):
        spec = frontier_spec().scaled(8, 4, 4)
        config = CongestConfig(ks=(10,), include_fifo=False, horizon_s=5e-5)
        doc1, path1, resumed1 = run_congest_cached(
            spec, config, out_dir=str(tmp_path))
        doc2, path2, resumed2 = run_congest_cached(
            spec, config, out_dir=str(tmp_path))
        assert (resumed1, resumed2) == (False, True)
        assert path1 == path2
        assert json.dumps(doc1, sort_keys=True) \
            == json.dumps(doc2, sort_keys=True)

    def test_fresh_reruns(self, tmp_path):
        spec = frontier_spec().scaled(8, 4, 4)
        config = CongestConfig(ks=(10,), include_fifo=False, horizon_s=5e-5)
        run_congest_cached(spec, config, out_dir=str(tmp_path))
        _, _, resumed = run_congest_cached(spec, config,
                                           out_dir=str(tmp_path), fresh=True)
        assert not resumed

    def test_corrupt_artifact_is_not_trusted(self, tmp_path):
        spec = frontier_spec().scaled(8, 4, 4)
        config = CongestConfig(ks=(10,), include_fifo=False, horizon_s=5e-5)
        _, path, _ = run_congest_cached(spec, config, out_dir=str(tmp_path))
        with open(path, "w") as fh:
            fh.write("{not json")
        assert load_congest_artifact(str(tmp_path),
                                     congest_run_id(spec, config)) is None

    def test_config_knobs_change_the_run_id(self):
        spec = frontier_spec()
        a = congest_run_id(spec, CongestConfig())
        b = congest_run_id(spec, CongestConfig(fanin=16))
        assert a != b

    def test_empty_study_rejected(self):
        with pytest.raises(ConfigurationError):
            CongestConfig(ks=(), include_fifo=False)
