"""Batch planner equivalence tests: ``paths()`` vs the scalar ``path()`` loop.

The contract (see :mod:`repro.fabric.batchroute`):

* ``chunk=1`` replays the scalar loop **bit-identically** for every policy
  (same paths, same RNG draws, same load-tracker state);
* minimal, Valiant, and fat-tree ECMP plans are scalar-identical at *any*
  chunk (their picks only depend on flows of the same ordered group pair /
  edge switch, which the grouped water-fill serialises exactly);
* chunked UGAL is a documented approximation — its *rates* are pinned at
  ``chunk=1`` only;
* ``register=False`` plans are scalar-identical at any chunk (every pick
  reads the same load snapshot).
"""

import numpy as np
import pytest

from repro.errors import RoutingError, TopologyError
from repro.fabric.batchroute import BatchPaths, auto_chunk
from repro.fabric.dragonfly import DragonflyConfig, build_dragonfly
from repro.fabric.fattree import FatTreeConfig, build_fattree
from repro.fabric.maxmin import maxmin_allocate
from repro.fabric.routing import FatTreeRouter, Router, RoutingPolicy
from repro.fabric.topology import LinkKind

CFG = DragonflyConfig().scaled(8, 4, 4)
FT_CFG = FatTreeConfig(edge_switches=8, endpoints_per_edge=8)
POLICIES = [RoutingPolicy.MINIMAL, RoutingPolicy.VALIANT, RoutingPolicy.UGAL]


@pytest.fixture(scope="module")
def topo():
    return build_dragonfly(CFG)


@pytest.fixture(scope="module")
def ft_topo():
    return build_fattree(FT_CFG)


def shift_pairs(n, offset):
    return [(i, (i + offset) % n) for i in range(n)]


def mixed_pairs(n, seed=11):
    """A permutation pattern mixing local and global flows."""
    perm = np.random.default_rng(seed).permutation(n)
    return [(i, int(perm[i])) for i in range(n) if perm[i] != i]


def scalar_plan(router, pairs, register=True):
    return [router.path(s, d, register=register) for s, d in pairs]


class TestChunk1IsBitIdentical:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_paths_and_loads_match_scalar(self, topo, policy):
        batch = Router(topo, CFG, policy, rng=3)
        scalar = Router(topo, CFG, policy, rng=3)
        pairs = mixed_pairs(CFG.total_endpoints)
        planned = batch.paths(pairs, chunk=1)
        expected = scalar_plan(scalar, pairs)
        assert planned.to_lists() == expected
        assert np.array_equal(batch.link_loads, scalar.link_loads)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_rng_stream_alignment_across_calls(self, topo, policy):
        # Planning two phases back to back must consume the generator
        # exactly like two scalar loops would.
        batch = Router(topo, CFG, policy, rng=9)
        scalar = Router(topo, CFG, policy, rng=9)
        n = CFG.total_endpoints
        for offset in (7, CFG.endpoints_per_group):
            pairs = shift_pairs(n, offset)
            assert batch.paths(pairs, chunk=1).to_lists() == \
                scalar_plan(scalar, pairs)


class TestAnyChunkPolicies:
    @pytest.mark.parametrize("chunk", [1, 7, 64, None])
    @pytest.mark.parametrize("policy",
                             [RoutingPolicy.MINIMAL, RoutingPolicy.VALIANT])
    def test_minimal_and_valiant_chunk_free(self, topo, policy, chunk):
        batch = Router(topo, CFG, policy, rng=5)
        scalar = Router(topo, CFG, policy, rng=5)
        pairs = mixed_pairs(CFG.total_endpoints)
        assert batch.paths(pairs, chunk=chunk).to_lists() == \
            scalar_plan(scalar, pairs)

    @pytest.mark.parametrize("chunk", [1, 16, None])
    def test_fattree_ecmp_chunk_free(self, ft_topo, chunk):
        batch = FatTreeRouter(ft_topo, FT_CFG, rng=2)
        scalar = FatTreeRouter(ft_topo, FT_CFG, rng=2)
        pairs = shift_pairs(FT_CFG.total_endpoints, 3)
        planned = batch.paths(pairs, chunk=chunk)
        assert planned.to_lists() == scalar_plan(scalar, pairs)
        assert np.array_equal(batch.link_loads if hasattr(batch, "link_loads")
                              else batch._load.counts, scalar._load.counts)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_register_false_chunk_free(self, topo, policy):
        # Unregistered planning never advances loads, so every pick sees
        # the same snapshot and any chunk replays the scalar loop.
        batch = Router(topo, CFG, policy, rng=4)
        scalar = Router(topo, CFG, policy, rng=4)
        pairs = mixed_pairs(CFG.total_endpoints)
        planned = batch.paths(pairs, chunk=37, register=False)
        assert planned.to_lists() == scalar_plan(scalar, pairs, register=False)
        assert batch.link_loads.sum() == 0


class TestUgalRates:
    def test_chunk1_rates_identical_to_scalar(self, topo):
        # The acceptance-criterion oracle: same flows, same max-min rates.
        caps = topo.capacities()
        batch = Router(topo, CFG, RoutingPolicy.UGAL, rng=6)
        scalar = Router(topo, CFG, RoutingPolicy.UGAL, rng=6)
        pairs = shift_pairs(CFG.total_endpoints, CFG.endpoints_per_group)
        demands = [0.7 * CFG.link_rate] * len(pairs)
        r_batch = maxmin_allocate(caps, batch.paths(pairs, chunk=1), demands)
        r_scalar = maxmin_allocate(caps, scalar_plan(scalar, pairs), demands)
        assert np.array_equal(r_batch.rates, r_scalar.rates)
        assert np.array_equal(r_batch.link_utilisation,
                              r_scalar.link_utilisation)
        assert np.array_equal(r_batch.bottleneck_link,
                              r_scalar.bottleneck_link)

    def test_chunked_ugal_paths_stay_valid(self, topo):
        router = Router(topo, CFG, RoutingPolicy.UGAL, rng=8)
        pairs = mixed_pairs(CFG.total_endpoints)
        planned = router.paths(pairs, chunk=64)  # validate_paths runs inside
        assert len(planned) == len(pairs)
        assert (planned.lengths() >= 2).all()


class TestDisabledLinks:
    def _link_of_kind(self, topo, kind, skip=0):
        hits = [lk for lk in topo.links if lk.kind is kind]
        return hits[skip]

    @pytest.mark.parametrize("kind", [LinkKind.L1, LinkKind.L2])
    def test_single_failure_matches_scalar(self, kind):
        topo = build_dragonfly(CFG)
        batch = Router(topo, CFG, RoutingPolicy.UGAL, rng=12)
        scalar = Router(topo, CFG, RoutingPolicy.UGAL, rng=12)
        failed = self._link_of_kind(topo, kind).index
        batch.disable_link(failed)
        scalar.disable_link(failed)
        pairs = mixed_pairs(CFG.total_endpoints)
        planned = batch.paths(pairs, chunk=1)
        assert planned.to_lists() == scalar_plan(scalar, pairs)
        assert failed not in set(planned.indices.tolist())

    def test_whole_bundle_down_forces_valiant_failover(self):
        topo = build_dragonfly(CFG)
        batch = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=13)
        scalar = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=13)
        # Kill every direct lane between groups 0 and 1, both directions.
        for lk in topo.links:
            if lk.kind is LinkKind.L2:
                ga = topo.group_of_switch(lk.src[1])
                gb = topo.group_of_switch(lk.dst[1])
                if {ga, gb} == {0, 1}:
                    batch.disable_link(lk.index)
                    scalar.disable_link(lk.index)
        g = CFG.endpoints_per_group
        pairs = [(i, g + i) for i in range(g)]  # group 0 -> group 1
        planned = batch.paths(pairs, chunk=1)
        assert planned.to_lists() == scalar_plan(scalar, pairs)
        # Failover paths detour through a third group: 2 global hops.
        kinds = topo.flat.link_kind
        for f in range(len(planned)):
            assert (kinds[planned.path(f)] == 2).sum() == 2

    def test_edge_link_failure_rejected(self, topo):
        router = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=1)
        edge = self._link_of_kind(topo, LinkKind.L0).index
        router.disable_link(edge)
        ep = (topo.link(edge).src[1] if topo.link(edge).src[0] == "ep"
              else topo.link(edge).dst[1])
        dst = (ep + CFG.endpoints_per_group) % CFG.total_endpoints
        with pytest.raises(RoutingError, match="edge link"):
            router.paths([(ep, dst)])


class TestLoadAccounting:
    def test_total_load_equals_total_links_planned(self, topo):
        router = Router(topo, CFG, RoutingPolicy.UGAL, rng=21)
        pairs = mixed_pairs(CFG.total_endpoints)
        planned = router.paths(pairs)
        assert router._load.counts.sum() == planned.indices.size

    def test_per_link_load_is_bincount_of_paths(self, topo):
        router = Router(topo, CFG, RoutingPolicy.VALIANT, rng=22)
        pairs = shift_pairs(CFG.total_endpoints, 9)
        planned = router.paths(pairs)
        expected = np.bincount(planned.indices,
                               minlength=topo.n_links)
        assert np.array_equal(router._load.counts, expected)


class TestMaxminCsr:
    def test_csr_and_list_inputs_agree(self, topo):
        router = Router(topo, CFG, RoutingPolicy.UGAL, rng=30)
        pairs = mixed_pairs(CFG.total_endpoints)
        planned = router.paths(pairs)
        caps = topo.capacities()
        demands = [0.7 * CFG.link_rate] * len(pairs)
        r_csr = maxmin_allocate(caps, planned, demands)
        r_lists = maxmin_allocate(caps, planned.to_lists(), demands)
        assert np.array_equal(r_csr.rates, r_lists.rates)
        assert np.array_equal(r_csr.bottleneck_link, r_lists.bottleneck_link)


class TestBatchPathsContainer:
    def test_from_matrix_drops_padding(self):
        matrix = np.array([[3, -1, 5], [-1, -1, -1], [7, 8, 9]])
        bp = BatchPaths.from_matrix(matrix)
        assert len(bp) == 3
        assert bp.to_lists() == [[3, 5], [], [7, 8, 9]]
        assert bp.path(2) == [7, 8, 9]
        assert np.array_equal(bp.lengths(), [2, 0, 3])

    def test_len_matches_pairs(self, topo):
        router = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=1)
        pairs = shift_pairs(CFG.total_endpoints, 5)
        assert len(router.paths(pairs, register=False)) == len(pairs)


class TestInputValidation:
    def test_bad_chunk_rejected(self, topo):
        router = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=1)
        with pytest.raises(RoutingError, match="chunk"):
            router.paths([(0, 1)], chunk=0)

    def test_self_flow_rejected(self, topo):
        router = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=1)
        with pytest.raises(RoutingError, match="coincide"):
            router.paths([(5, 5)])

    def test_unknown_endpoint_rejected(self, topo):
        router = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=1)
        with pytest.raises(TopologyError, match="unknown endpoint"):
            router.paths([(0, CFG.total_endpoints + 100)])

    def test_malformed_pairs_rejected(self, topo):
        router = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=1)
        with pytest.raises(RoutingError, match="sequence of"):
            router.paths([(0, 1, 2)])

    def test_ndarray_pairs_accepted(self, topo):
        router = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=1)
        pairs = np.array(shift_pairs(CFG.total_endpoints, 4))
        assert len(router.paths(pairs, register=False)) == len(pairs)


class TestAutoChunk:
    def test_bounds(self):
        assert auto_chunk(1) == 16
        assert auto_chunk(128) == 16
        assert auto_chunk(1024) == 128
        assert auto_chunk(1 << 20) == 512


class TestFlatArrays:
    def test_flat_view_is_cached_and_invalidated(self, topo):
        assert topo.flat is topo.flat
        assert topo.capacities() is topo.flat.capacities

    def test_mutation_invalidates(self):
        topo = build_dragonfly(DragonflyConfig().scaled(4, 2, 2))
        before = topo.flat
        sw = topo.n_switches
        topo.add_switch(sw, group=0)
        assert topo.flat is not before
        assert topo.flat.switch_group[sw] == 0

    def test_views_are_read_only(self, topo):
        with pytest.raises(ValueError):
            topo.flat.capacities[0] = 1.0

    def test_reverse_indices(self, topo):
        for g in range(CFG.groups):
            sws = topo.switches_in_group(g)
            assert sws == sorted(sws)
            assert all(topo.group_of_switch(s) == g for s in sws)
        for s in list(topo.switches())[:4]:
            for ep in topo.endpoints_on_switch(s):
                assert topo.switch_of_endpoint(ep) == s

    def test_validate_paths_accepts_scalar_valid_chain(self, topo):
        router = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=1)
        path = np.asarray(router.path(0, CFG.total_endpoints - 1,
                                      register=False))
        topo.validate_paths(path, np.array([0, path.size]))

    def test_validate_paths_rejects_broken_chain(self, topo):
        router = Router(topo, CFG, RoutingPolicy.MINIMAL, rng=1)
        a = router.path(0, CFG.total_endpoints - 1, register=False)
        b = router.path(1, CFG.total_endpoints - 2, register=False)
        broken = np.asarray(a + b)  # one flow, mismatched joint
        with pytest.raises(TopologyError, match="path breaks"):
            topo.validate_paths(broken, np.array([0, broken.size]))
