"""Slingshot network facade tests on the reduced-scale fabric."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fabric.network import STREAM_EFFICIENCY


class TestShiftPattern:
    def test_intra_group_shift_gets_stream_rate(self, small_network):
        # Figure 6's 17.5 GB/s spike: neighbours within the group.
        flows = small_network.shift_pattern(1)
        rates = np.array([f.bandwidth for f in flows])
        near_full = rates > 0.95 * STREAM_EFFICIENCY * 25e9
        assert near_full.mean() > 0.5

    def test_global_shift_is_much_slower(self, small_network):
        g = small_network.config.endpoints_per_group
        local = np.mean([f.bandwidth for f in small_network.shift_pattern(1)])
        far = np.mean([f.bandwidth
                       for f in small_network.shift_pattern(3 * g)])
        assert far < 0.6 * local

    def test_distribution_is_wide_like_figure6(self, small_network):
        g = small_network.config.endpoints_per_group
        rates = []
        for k in (1, g // 2, g, 2 * g, 3 * g):
            rates.extend(f.bandwidth for f in small_network.shift_pattern(k))
        rates = np.array(rates)
        assert rates.max() / rates.min() > 3.0  # Frontier's wide spread

    def test_invalid_offsets(self, small_network):
        with pytest.raises(ConfigurationError):
            small_network.shift_pattern(0)
        with pytest.raises(ConfigurationError):
            small_network.shift_pattern(small_network.config.total_endpoints)


class TestFlowBandwidths:
    def test_flow_results_align_with_pairs(self, small_network):
        pairs = [(0, 5), (1, 9), (2, 30)]
        flows, result = small_network.flow_bandwidths(pairs)
        assert [(f.src, f.dst) for f in flows] == pairs
        assert np.allclose([f.bandwidth for f in flows], result.rates)

    def test_single_flow_gets_stream_limit(self, small_network):
        flows, _ = small_network.flow_bandwidths([(0, 40)])
        assert flows[0].bandwidth == pytest.approx(
            STREAM_EFFICIENCY * 25e9, rel=0.01)

    def test_elastic_demand_fills_the_link(self, small_network):
        flows, _ = small_network.flow_bandwidths([(0, 40)],
                                                 demand_per_flow=float("inf"))
        assert flows[0].bandwidth == pytest.approx(25e9, rel=0.01)

    def test_empty_pairs_rejected(self, small_network):
        with pytest.raises(ConfigurationError):
            small_network.flow_bandwidths([])


class TestLatencyFacade:
    def test_latency_sample_shape_and_range(self, small_network):
        lats = small_network.latency_sample(50, rng=3)
        assert lats.shape == (50,)
        assert np.all(lats > 0.5e-6)
        assert np.all(lats < 20e-6)

    def test_allreduce_facade(self, small_network):
        assert small_network.allreduce_latency(1024) > 0

    def test_alltoall_facade(self, small_network):
        est = small_network.alltoall_bandwidth()
        assert est.per_node > 0
