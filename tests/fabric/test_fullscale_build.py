"""Full-scale Frontier fabric build — the 74-group dragonfly, materialised.

Most tests use reduced-scale fabrics; this one builds the real thing once
and checks the §3.2 structural invariants at size.
"""

import pytest

from repro.fabric.dragonfly import DragonflyConfig, build_dragonfly
from repro.fabric.routing import Router, RoutingPolicy
from repro.fabric.topology import LinkKind


@pytest.fixture(scope="module")
def full():
    cfg = DragonflyConfig()
    return cfg, build_dragonfly(cfg)


class TestFullScaleStructure:
    def test_counts(self, full):
        cfg, topo = full
        assert topo.n_switches == 2368
        assert topo.n_endpoints == 37888

    def test_port_budgets_respected_everywhere(self, full):
        cfg, topo = full
        # sample switches across groups; every one must fit 16/32/16
        for sw in range(0, topo.n_switches, 97):
            counts = topo.port_counts(sw)
            assert counts[LinkKind.L0] == 16
            assert counts[LinkKind.L1] == 31   # full mesh of 32 switches
            assert counts[LinkKind.L2] <= 16

    def test_global_capacity_is_270_tbs(self, full):
        cfg, topo = full
        total = sum(link.capacity for link in topo.links
                    if link.kind is LinkKind.L2) / 2  # one direction
        assert total == pytest.approx(270.1e12, rel=0.001)

    def test_l2_ports_spread_evenly(self, full):
        cfg, topo = full
        l2_counts = [topo.port_counts(sw)[LinkKind.L2]
                     for sw in range(0, 64)]   # group 0 + part of group 1
        assert max(l2_counts) - min(l2_counts) <= 2

    def test_minimal_routing_full_scale(self, full):
        cfg, topo = full
        router = Router(topo, cfg, RoutingPolicy.MINIMAL, rng=1)
        # far corner to far corner: still <= 3 switch hops
        path = router.path(0, cfg.total_endpoints - 1, register=False)
        assert router.switch_hops(path) <= 3
        assert router.global_hops(path) == 1

    def test_latency_at_full_scale(self, full):
        cfg, topo = full
        from repro.fabric.latency import LatencyModel
        router = Router(topo, cfg, RoutingPolicy.MINIMAL, rng=2)
        lat = LatencyModel()
        path = router.path(5, cfg.endpoints_per_group * 40 + 3,
                           register=False)
        t = lat.path_latency(topo, path)
        # Table 5 regime: short minimal paths land under the 2.6 us mean,
        # nothing quiet exceeds the 4.8 us tail.
        assert 1.5e-6 < t < 4.8e-6
