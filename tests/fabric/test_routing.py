"""Dragonfly and fat-tree routing tests."""

import pytest

from repro.errors import RoutingError
from repro.fabric.dragonfly import DragonflyConfig, build_dragonfly
from repro.fabric.fattree import FatTreeConfig, build_fattree
from repro.fabric.routing import FatTreeRouter, Router, RoutingPolicy
from repro.fabric.topology import LinkKind


@pytest.fixture(scope="module")
def env():
    cfg = DragonflyConfig().scaled(6, 4, 3)
    topo = build_dragonfly(cfg)
    return cfg, topo


def make_router(env, policy):
    cfg, topo = env
    return Router(topo, cfg, policy, rng=1)


class TestMinimalRouting:
    def test_paths_are_valid_chains(self, env):
        router = make_router(env, RoutingPolicy.MINIMAL)
        for dst in (1, 7, 40, 60):
            router.path(0, dst)  # validate_path runs inside

    def test_three_hop_property(self, env):
        # Minimal dragonfly paths: at most 3 switch-switch hops.
        router = make_router(env, RoutingPolicy.MINIMAL)
        cfg, _ = env
        for dst in range(1, cfg.total_endpoints, 7):
            path = router.path(0, dst, register=False)
            assert router.switch_hops(path) <= 3
            assert router.global_hops(path) <= 1

    def test_intra_group_needs_no_global_hop(self, env):
        router = make_router(env, RoutingPolicy.MINIMAL)
        cfg, _ = env
        path = router.path(0, cfg.endpoints_per_switch, register=False)
        assert router.global_hops(path) == 0

    def test_same_switch_single_hop(self, env):
        router = make_router(env, RoutingPolicy.MINIMAL)
        path = router.path(0, 1, register=False)
        assert router.switch_hops(path) == 0

    def test_self_route_rejected(self, env):
        router = make_router(env, RoutingPolicy.MINIMAL)
        with pytest.raises(RoutingError):
            router.path(5, 5)


class TestValiantRouting:
    def test_two_global_hops(self, env):
        router = make_router(env, RoutingPolicy.VALIANT)
        cfg, _ = env
        dst = cfg.endpoints_per_group * 3  # different group
        path = router.path(0, dst, register=False)
        assert router.global_hops(path) == 2
        assert router.switch_hops(path) <= 5

    def test_intra_group_falls_back_to_local(self, env):
        router = make_router(env, RoutingPolicy.VALIANT)
        path = router.path(0, 2, register=False)
        assert router.global_hops(path) == 0


class TestUgalRouting:
    def test_quiet_network_prefers_minimal(self, env):
        router = make_router(env, RoutingPolicy.UGAL)
        cfg, _ = env
        dst = cfg.endpoints_per_group * 2
        path = router.path(0, dst, register=False)
        assert router.global_hops(path) == 1

    def test_hot_minimal_link_diverts(self, env):
        cfg, topo = env
        router = Router(topo, cfg, RoutingPolicy.UGAL, rng=2)
        dst_group_base = cfg.endpoints_per_group
        # Hammer the same destination group from many sources to load the
        # direct bundle; eventually UGAL must start diverting.
        diverted = 0
        for i in range(cfg.endpoints_per_group):
            path = router.path(i, dst_group_base + i)
            if router.global_hops(path) == 2:
                diverted += 1
        assert diverted > 0

    def test_load_registration_and_reset(self, env):
        router = make_router(env, RoutingPolicy.UGAL)
        router.path(0, 50)
        assert router.link_loads.sum() > 0
        router.reset_load()
        assert router.link_loads.sum() == 0


class TestGatewaySpreading:
    def test_global_links_spread_over_switches(self, env):
        cfg, topo = env
        # Count L2 link endpoints per switch: spread should be within 2x.
        counts = {}
        for link in topo.links:
            if link.kind is LinkKind.L2:
                counts[link.src[1]] = counts.get(link.src[1], 0) + 1
        assert max(counts.values()) <= 2 * min(counts.values())


class TestFatTreeRouting:
    @pytest.fixture(scope="class")
    def ft(self):
        cfg = FatTreeConfig(edge_switches=6, endpoints_per_edge=4)
        return cfg, build_fattree(cfg)

    def test_same_edge_two_links(self, ft):
        cfg, topo = ft
        router = FatTreeRouter(topo, cfg)
        path = router.path(0, 1, register=False)
        assert len(path) == 2

    def test_cross_edge_up_down(self, ft):
        cfg, topo = ft
        router = FatTreeRouter(topo, cfg)
        path = router.path(0, cfg.endpoints_per_edge * 3, register=False)
        assert len(path) == 4

    def test_ecmp_spreads_over_cores(self, ft):
        cfg, topo = ft
        router = FatTreeRouter(topo, cfg)
        cores_used = set()
        for i in range(cfg.endpoints_per_edge):
            path = router.path(i, cfg.endpoints_per_edge * 2 + i)
            up_link = topo.link(path[1])
            cores_used.add(up_link.dst)
        assert len(cores_used) > 1

    def test_self_route_rejected(self, ft):
        cfg, topo = ft
        router = FatTreeRouter(topo, cfg)
        with pytest.raises(RoutingError):
            router.path(3, 3)
