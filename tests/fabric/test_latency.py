"""Latency model tests — calibrated to Table 5's isolated numbers."""

import pytest

from repro.fabric.latency import LatencyModel


@pytest.fixture()
def lat() -> LatencyModel:
    return LatencyModel()


class TestCalibration:
    def test_average_minimal_latency_2_6_usec(self, lat):
        # Table 5: RR Two-sided Lat (8 B) average 2.6 usec.
        avg = lat.average_minimal_latency(size_bytes=8.0)
        assert avg == pytest.approx(2.6e-6, rel=0.05)

    def test_longest_minimal_shape_under_p99(self, lat):
        worst_minimal = lat.analytic_latency(local_hops=2, global_hops=1)
        assert worst_minimal < 4.8e-6  # p99 headroom comes from jitter

    def test_valiant_paths_cost_more(self, lat):
        minimal = lat.analytic_latency(local_hops=2, global_hops=1)
        valiant = lat.analytic_latency(local_hops=3, global_hops=2)
        assert valiant > minimal


class TestComposition:
    def test_more_switches_cost_more(self, lat):
        a = lat.analytic_latency(local_hops=0, global_hops=1)
        b = lat.analytic_latency(local_hops=2, global_hops=1)
        assert b == pytest.approx(a + 2 * (lat.per_switch_s + lat.l1_cable_s),
                                  rel=1e-6)

    def test_serialisation_term(self, lat):
        small = lat.analytic_latency(local_hops=1, global_hops=1, size_bytes=8)
        big = lat.analytic_latency(local_hops=1, global_hops=1,
                                   size_bytes=1 << 20)
        assert big - small == pytest.approx(((1 << 20) - 8) / lat.link_rate,
                                            rel=1e-6)

    def test_global_cable_is_longest(self, lat):
        from repro.fabric.topology import LinkKind
        assert lat.cable_delay(LinkKind.L2) > lat.cable_delay(LinkKind.L1)
        assert lat.cable_delay(LinkKind.L1) > lat.cable_delay(LinkKind.L0)


class TestPathLatency:
    def test_against_materialised_topology(self, small_network):
        # path_latency over real router paths stays in the usec range and
        # orders by hop count.
        lat = small_network.latency
        same_switch = small_network.p2p_latency(0, 1)
        cross_group = small_network.p2p_latency(
            0, small_network.config.endpoints_per_group * 2)
        assert 0.5e-6 < same_switch < cross_group < 10e-6
