"""Queue-simulation tests: validate the analytic congestion abstraction."""

import pytest

from repro.errors import ConfigurationError
from repro.fabric.queueing import PortSimulation


def run(discipline: str, congestor_rate: float, rng=1):
    sim = PortSimulation(victim_rate=0.10, congestor_rate=congestor_rate,
                         discipline=discipline, rng=rng)
    return sim.run(horizon=30_000.0)


class TestDisciplines:
    def test_fair_queueing_protects_victims(self):
        # The Slingshot headline, from first principles: with per-flow
        # fairness, heavy congestors barely move victim latency; FIFO
        # lets them queue in front.
        fifo_quiet = run("fifo", congestor_rate=0.0)
        fifo_loaded = run("fifo", congestor_rate=0.75)
        fair_quiet = run("per_flow_fair", congestor_rate=0.0)
        fair_loaded = run("per_flow_fair", congestor_rate=0.75)
        fifo_impact = fifo_loaded.impact_vs(fifo_quiet)
        fair_impact = fair_loaded.impact_vs(fair_quiet)
        assert fifo_impact["avg"] > 3.0          # badly hurt without CC
        assert fair_impact["avg"] < fifo_impact["avg"] / 2
        assert fair_impact["p99"] < fifo_impact["p99"]

    def test_fair_victim_wait_bounded_by_rounds(self):
        # A victim waits at most ~one congestor packet per round-robin
        # turn: its mean wait stays within a few service times.
        loaded = run("per_flow_fair", congestor_rate=0.75)
        assert loaded.mean_wait < 5.0   # service_time = 1.0

    def test_quiet_port_has_low_wait(self):
        quiet = run("fifo", congestor_rate=0.0)
        # M/D/1 at rho=0.1: mean wait = rho/(2(1-rho)) ~ 0.056
        assert quiet.mean_wait == pytest.approx(0.056, abs=0.03)

    def test_everything_gets_served(self):
        result = run("per_flow_fair", congestor_rate=0.5)
        assert result.served_victims > 2000
        assert result.served_congestors > 10_000

    def test_utilisation_tracks_offered_load(self):
        result = run("fifo", congestor_rate=0.6)
        assert result.utilisation == pytest.approx(0.7, abs=0.03)


class TestAnalyticAgreement:
    def test_end_to_end_impact_ordering(self):
        """Convert queue waits to end-to-end message-latency impacts (the
        quantity Table 5 reports: base 2.6 us one-way, congestor packets
        are 128 KiB = 5.24 us of wire time) and check the analytic model
        sits where it should: at or below the round-robin simulation,
        which in turn crushes FIFO."""
        from repro.fabric.congestion import CongestionControl
        base_latency = 2.6      # microseconds
        service_us = 5.24       # 128 KiB at 25 GB/s

        def e2e_impact(discipline: str) -> float:
            quiet = run(discipline, congestor_rate=0.0)
            loaded = run(discipline, congestor_rate=0.75)
            return ((base_latency + loaded.mean_wait * service_us)
                    / (base_latency + quiet.mean_wait * service_us))

        fifo = e2e_impact("fifo")
        fair = e2e_impact("per_flow_fair")
        analytic = CongestionControl().impact(
            victim_load=0.10, congestor_load=0.75,
            ranks_per_nic=2.0).latency_avg
        assert fair < fifo / 2           # per-flow fairness is the point
        # Slingshot's hardware (many queues + fine-grained arbitration)
        # does better than strict one-packet round-robin; the analytic
        # ~1.0x must therefore sit at or below the RR simulation.
        assert 1.0 <= analytic <= fair


class TestValidation:
    def test_unstable_load_rejected(self):
        with pytest.raises(ConfigurationError):
            PortSimulation(victim_rate=0.5, congestor_rate=0.6)

    def test_bad_discipline(self):
        with pytest.raises(ConfigurationError):
            PortSimulation(victim_rate=0.1, discipline="lifo")

    def test_bad_rates(self):
        with pytest.raises(ConfigurationError):
            PortSimulation(victim_rate=0.0)
        with pytest.raises(ConfigurationError):
            PortSimulation(victim_rate=0.1, service_time=0.0)

    def test_deterministic_with_seed(self):
        a = run("fifo", 0.5, rng=9)
        b = run("fifo", 0.5, rng=9)
        assert a.mean_wait == b.mean_wait
