"""Fat-tree (Summit comparison fabric) tests."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.fabric.fattree import SUMMIT_FATTREE, FatTreeConfig
from repro.fabric.network import FatTreeNetwork


class TestConfig:
    def test_summit_scale(self):
        assert SUMMIT_FATTREE.total_endpoints == 4608
        assert SUMMIT_FATTREE.link_rate == 12.5e9
        assert SUMMIT_FATTREE.oversubscription == 1.0

    def test_nonblocking_uplink_capacity(self):
        cfg = FatTreeConfig(edge_switches=4, endpoints_per_edge=8)
        assert cfg.uplink_capacity_per_edge == pytest.approx(
            8 * cfg.link_rate)

    def test_tapered_tree(self):
        cfg = FatTreeConfig(edge_switches=4, endpoints_per_edge=8,
                            oversubscription=2.0)
        assert cfg.uplink_capacity_per_edge == pytest.approx(4 * cfg.link_rate)
        assert cfg.core_switches == 4

    def test_invalid_oversubscription(self):
        with pytest.raises(TopologyError):
            FatTreeConfig(oversubscription=0.5)


class TestBuiltClos:
    @pytest.fixture(scope="class")
    def net(self):
        return FatTreeNetwork(FatTreeConfig(edge_switches=8,
                                            endpoints_per_edge=6))

    def test_nonblocking_shift_gets_full_stream_rate(self, net):
        # Every pair sustains the single-stream rate: Summit's tight spike.
        flows = net.shift_pattern(13)
        rates = np.array([f.bandwidth for f in flows])
        assert rates.min() == pytest.approx(rates.max(), rel=1e-6)
        assert rates[0] == pytest.approx(0.70 * 12.5e9, rel=0.01)

    def test_all_offsets_equal_bandwidth(self, net):
        r1 = np.array([f.bandwidth for f in net.shift_pattern(1)])
        r2 = np.array([f.bandwidth for f in net.shift_pattern(23)])
        assert r1.mean() == pytest.approx(r2.mean(), rel=0.01)

    def test_oversubscribed_tree_degrades_cross_edge_traffic(self):
        tapered = FatTreeNetwork(FatTreeConfig(edge_switches=8,
                                               endpoints_per_edge=6,
                                               oversubscription=3.0))
        flows = tapered.shift_pattern(6)  # every flow crosses edges
        rates = np.array([f.bandwidth for f in flows])
        assert rates.mean() < 0.70 * 12.5e9 * 0.8
