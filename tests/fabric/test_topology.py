"""Generic topology graph tests."""

import pytest

from repro.errors import TopologyError
from repro.fabric.topology import LinkKind, Topology


@pytest.fixture()
def tiny() -> Topology:
    t = Topology()
    t.add_switch(0, group=0)
    t.add_switch(1, group=0)
    t.add_switch(2, group=1)
    t.add_endpoint(0, 0)
    t.add_endpoint(1, 2)
    t.add_bidirectional(("ep", 0), ("sw", 0), 25e9, LinkKind.L0)
    t.add_bidirectional(("sw", 0), ("sw", 1), 25e9, LinkKind.L1)
    t.add_bidirectional(("sw", 1), ("sw", 2), 50e9, LinkKind.L2)
    t.add_bidirectional(("sw", 2), ("ep", 1), 25e9, LinkKind.L0)
    return t


class TestConstruction:
    def test_counts(self, tiny):
        assert tiny.n_switches == 3
        assert tiny.n_endpoints == 2
        assert tiny.n_links == 8  # 4 cables x 2 directions

    def test_duplicate_switch_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.add_switch(0)

    def test_duplicate_endpoint_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.add_endpoint(0, 1)

    def test_endpoint_needs_existing_switch(self):
        t = Topology()
        with pytest.raises(TopologyError):
            t.add_endpoint(0, 99)

    def test_duplicate_link_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.add_link(("sw", 0), ("sw", 1), 1e9, LinkKind.L1)

    def test_link_to_unknown_node_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.add_link(("sw", 0), ("sw", 9), 1e9, LinkKind.L1)
        with pytest.raises(TopologyError):
            tiny.add_link(("xx", 0), ("sw", 1), 1e9, LinkKind.L1)

    def test_nonpositive_capacity_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.add_link(("sw", 0), ("sw", 2), 0.0, LinkKind.L2)


class TestQueries:
    def test_both_directions_exist_independently(self, tiny):
        fwd = tiny.link_between(("sw", 1), ("sw", 2))
        rev = tiny.link_between(("sw", 2), ("sw", 1))
        assert fwd is not None and rev is not None
        assert fwd.index != rev.index

    def test_group_lookups(self, tiny):
        assert tiny.group_of_switch(2) == 1
        assert tiny.group_of_endpoint(1) == 1
        assert tiny.switch_of_endpoint(0) == 0

    def test_unknown_lookups_raise(self, tiny):
        with pytest.raises(TopologyError):
            tiny.group_of_switch(42)
        with pytest.raises(TopologyError):
            tiny.switch_of_endpoint(42)

    def test_switches_in_group(self, tiny):
        assert tiny.switches_in_group(0) == [0, 1]

    def test_endpoints_on_switch(self, tiny):
        assert tiny.endpoints_on_switch(0) == [0]
        assert tiny.endpoints_on_switch(1) == []

    def test_out_links(self, tiny):
        outs = tiny.out_links(("sw", 1))
        assert {link.dst for link in outs} == {("sw", 0), ("sw", 2)}

    def test_capacities_indexing(self, tiny):
        caps = tiny.capacities()
        assert len(caps) == tiny.n_links
        for link in tiny.links:
            assert caps[link.index] == link.capacity

    def test_port_counts(self, tiny):
        counts = tiny.port_counts(1)
        assert counts[LinkKind.L1] == 1
        assert counts[LinkKind.L2] == 1
        assert counts[LinkKind.L0] == 0


class TestPathValidation:
    def test_valid_path(self, tiny):
        p = [tiny.link_between(("ep", 0), ("sw", 0)).index,
             tiny.link_between(("sw", 0), ("sw", 1)).index,
             tiny.link_between(("sw", 1), ("sw", 2)).index,
             tiny.link_between(("sw", 2), ("ep", 1)).index]
        tiny.validate_path(p)  # no raise

    def test_broken_path_raises(self, tiny):
        p = [tiny.link_between(("ep", 0), ("sw", 0)).index,
             tiny.link_between(("sw", 1), ("sw", 2)).index]
        with pytest.raises(TopologyError):
            tiny.validate_path(p)
