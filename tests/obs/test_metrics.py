"""Counter/gauge/histogram accumulation and the disabled no-op path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import (NULL_METRIC, Counter, Histogram,
                               MetricsRegistry)


class TestCounter:
    def test_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_registry_returns_same_instance(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("a").inc()
        reg.counter("a").inc()
        assert reg.counter("a").value == 2.0

    def test_type_collision_rejected(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")


class TestGauge:
    def test_last_value_wins(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("depth")
        g.set(5)
        g.set(2)
        assert g.value == 2.0
        g.inc()
        g.dec(3)
        assert g.value == 0.0


class TestHistogram:
    def test_accumulates_summary_stats(self):
        h = Histogram("lat", edges=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(555.5)
        assert h.min == 0.5
        assert h.max == 500.0
        assert h.mean == pytest.approx(138.875)

    def test_observe_many_matches_observe(self):
        a = Histogram("a", edges=(0.25, 0.5, 1.0))
        b = Histogram("b", edges=(0.25, 0.5, 1.0))
        values = np.linspace(0.0, 1.2, 37)
        for v in values:
            a.observe(v)
        b.observe_many(values)
        assert a.snapshot() == b.snapshot()

    def test_bucket_counts(self):
        h = Histogram("util", edges=(0.5, 1.0))
        h.observe_many([0.1, 0.4, 0.7, 1.0, 2.0])
        buckets = h.snapshot()["buckets"]
        assert buckets["le_0.5"] == 2
        assert buckets["le_1"] == 2
        assert buckets["overflow"] == 1

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", edges=(2.0, 1.0))

    def test_empty_histogram_snapshot(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["mean"] is None


class TestDisabledRegistry:
    def test_every_lookup_returns_the_shared_null_metric(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_METRIC
        assert reg.gauge("b") is NULL_METRIC
        assert reg.histogram("c") is NULL_METRIC
        # nothing was registered
        assert reg.names() == []
        assert reg.snapshot() == {}

    def test_null_metric_interface_is_noop(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(5)
        NULL_METRIC.observe(1.0)
        NULL_METRIC.observe_many([1.0, 2.0])
        assert NULL_METRIC.value == 0.0

    def test_enable_after_disable_starts_recording(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc()
        reg.enable()
        reg.counter("a").inc()
        assert reg.counter("a").value == 1.0


class TestSnapshot:
    def test_snapshot_shape(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3.0}
        assert snap["g"] == {"type": "gauge", "value": 7.0}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["count"] == 1

    def test_histogram_snapshot_carries_edges(self):
        snap = Histogram("h", edges=(1.0, 2.0)).snapshot()
        assert snap["edges"] == [1.0, 2.0]


class TestMerge:
    """Sweep workers ship snapshot dicts home; the parent folds them in."""

    @staticmethod
    def worker_registry(counter: float = 2.0) -> MetricsRegistry:
        reg = MetricsRegistry(enabled=True)
        reg.counter("paths").inc(counter)
        reg.gauge("depth").set(counter)
        reg.histogram("util", edges=(0.5, 1.0)).observe_many(
            [0.1, 0.7, counter])
        return reg

    def test_counters_add_across_workers(self):
        parent = MetricsRegistry(enabled=True)
        parent.merge(self.worker_registry(2.0).snapshot())
        parent.merge(self.worker_registry(3.0).snapshot())
        assert parent.counter("paths").value == 5.0

    def test_gauges_keep_latest_value(self):
        parent = MetricsRegistry(enabled=True)
        parent.merge(self.worker_registry(2.0))
        parent.merge(self.worker_registry(3.0))
        assert parent.gauge("depth").value == 3.0

    def test_histograms_combine_exactly(self):
        merged = MetricsRegistry(enabled=True)
        merged.merge(self.worker_registry(2.0))
        merged.merge(self.worker_registry(9.0))
        direct = Histogram("util", edges=(0.5, 1.0))
        direct.observe_many([0.1, 0.7, 2.0, 0.1, 0.7, 9.0])
        got = merged.histogram("util", edges=(0.5, 1.0)).snapshot()
        want = direct.snapshot()
        assert got.pop("sum") == pytest.approx(want.pop("sum"))
        assert got.pop("mean") == pytest.approx(want.pop("mean"))
        assert got == want

    def test_merge_accepts_live_registry_or_snapshot(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.merge(self.worker_registry())
        b.merge(self.worker_registry().snapshot())
        assert a.snapshot() == b.snapshot()

    def test_merge_into_disabled_registry_raises(self):
        with pytest.raises(RuntimeError, match="disabled"):
            MetricsRegistry(enabled=False).merge(self.worker_registry())

    def test_mismatched_histogram_edges_rejected(self):
        parent = MetricsRegistry(enabled=True)
        parent.histogram("util", edges=(0.5, 1.0)).observe(0.2)
        other = MetricsRegistry(enabled=True)
        other.histogram("util", edges=(10.0, 20.0)).observe(15.0)
        with pytest.raises(ValueError, match="edges"):
            parent.merge(other)

    def test_unknown_instrument_type_rejected(self):
        with pytest.raises(ValueError, match="unknown instrument"):
            MetricsRegistry(enabled=True).merge(
                {"x": {"type": "sparkline", "value": 1.0}})

    def test_unknown_bucket_label_rejected(self):
        h = Histogram("util", edges=(0.5, 1.0))
        with pytest.raises(ValueError, match="unknown bucket"):
            h.merge_snapshot({"edges": [0.5, 1.0], "count": 1, "sum": 1.0,
                              "min": 1.0, "max": 1.0,
                              "buckets": {"le_99": 1}})

    def test_empty_snapshot_merge_is_identity(self):
        h = Histogram("util", edges=(0.5, 1.0))
        h.observe(0.7)
        before = h.snapshot()
        h.merge_snapshot(Histogram("other", edges=(0.5, 1.0)).snapshot())
        assert h.snapshot() == before
