"""Span nesting, timing, decorator API, and the allocation-free no-op path."""

from __future__ import annotations

import time

from repro import obs
from repro.obs.tracer import NULL_SPAN, Tracer


class TestNesting:
    def test_spans_nest_into_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        roots = tracer.roots
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["middle", "sibling"]
        assert [c.name for c in roots[0].children[0].children] == ["inner"]

    def test_sequential_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_parent_duration_covers_children(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.005)
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert inner.duration_s >= 0.004
        assert outer.duration_s >= inner.duration_s

    def test_attributes_and_exception_marking(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("failing", n=3):
                raise ValueError("boom")
        except ValueError:
            pass
        span = tracer.roots[0]
        assert span.attributes["n"] == 3
        assert span.attributes["error"] == "ValueError"
        assert span.end_s is not None

    def test_decorator_records_span(self):
        tracer = Tracer(enabled=True)

        @tracer.traced("worker.task")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert [r.name for r in tracer.roots] == ["worker.task"]

    def test_finished_spans_depth_first(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.finished_spans()] == ["a", "b"]


class TestDisabledOverhead:
    def test_disabled_span_is_the_shared_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", k=1) is NULL_SPAN
        assert tracer.span("other") is NULL_SPAN

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ghost"):
            pass
        assert tracer.roots == []
        assert tracer.finished_spans() == []

    def test_module_level_disabled_path(self):
        assert obs.span("x") is obs.span("y")
        assert obs.span("x") is NULL_SPAN
        assert obs.tracer().roots == []

    def test_null_span_interface_is_noop(self):
        NULL_SPAN.set_attribute("k", "v")
        assert NULL_SPAN.duration_s == 0.0

    def test_decorated_function_untraced_when_disabled(self):
        tracer = Tracer(enabled=False)

        @tracer.traced()
        def work():
            return 1

        assert work() == 1
        assert tracer.roots == []


class TestStateManagement:
    def test_reset_drops_spans_but_not_flag(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.enabled

    def test_enable_disable_round_trip(self):
        obs.enable()
        assert obs.enabled()
        with obs.span("visible"):
            pass
        obs.disable()
        assert not obs.enabled()
        with obs.span("invisible"):
            pass
        assert [r.name for r in obs.tracer().roots] == ["visible"]
