"""Smoke tests: instrumented layers emit the expected spans and metrics."""

from __future__ import annotations

import pytest

from repro import obs
from repro.fabric.dragonfly import DragonflyConfig
from repro.fabric.network import SlingshotNetwork
from repro.mpi.job import JobLayout
from repro.mpi.simmpi import SimComm
from repro.storage.iosim import CheckpointScenario
from repro.units import TiB


@pytest.fixture()
def enabled_obs():
    obs.enable()
    yield
    obs.disable()
    obs.reset()


class TestFabricMetrics:
    def test_flow_bandwidths_emits_expected_metric_names(self, enabled_obs):
        net = SlingshotNetwork(DragonflyConfig().scaled(4, 4, 4), rng=0)
        flows = net.shift_pattern(3)
        assert flows  # the simulation itself still works
        names = obs.registry().names()
        for expected in ("fabric.paths_computed", "fabric.link_utilisation",
                         "fabric.flow_bandwidth_bytes_per_s",
                         "fabric.maxmin.solves", "fabric.maxmin.iterations"):
            assert expected in names, f"missing {expected} in {names}"
        snap = obs.registry().snapshot()
        assert snap["fabric.paths_computed"]["value"] == len(flows)
        assert snap["fabric.link_utilisation"]["count"] > 0
        assert snap["fabric.maxmin.iterations"]["value"] >= 1

    def test_flow_bandwidths_emits_nested_spans(self, enabled_obs):
        net = SlingshotNetwork(DragonflyConfig().scaled(4, 4, 4), rng=0)
        net.shift_pattern(3)
        roots = obs.tracer().roots
        assert [r.name for r in roots] == ["fabric.flow_bandwidths"]
        assert "fabric.maxmin_allocate" in [c.name for c in roots[0].children]
        assert roots[0].attributes["n_flows"] == 64

    def test_disabled_network_emits_nothing(self):
        net = SlingshotNetwork(DragonflyConfig().scaled(4, 4, 4), rng=0)
        net.shift_pattern(3)
        assert obs.registry().snapshot() == {}
        assert obs.tracer().roots == []


class TestMpiMetrics:
    def test_p2p_and_collectives_counted(self, enabled_obs):
        comm = SimComm(JobLayout.contiguous(4))
        comm.p2p_time(0, 1, 1024.0)    # on node
        comm.p2p_time(0, 31, 1024.0)   # off node
        comm.allreduce_time(8.0)
        comm.alltoall_time(1024.0)
        snap = obs.registry().snapshot()
        assert snap["mpi.p2p_messages"]["value"] == 2
        assert snap["mpi.p2p_on_node"]["value"] == 1
        assert snap["mpi.collective_calls"]["value"] == 2
        span_names = {s.name for s in obs.tracer().finished_spans()}
        assert {"mpi.allreduce", "mpi.alltoall"} <= span_names


class TestStorageMetrics:
    def test_ingest_and_checkpoint_instrumented(self, enabled_obs):
        CheckpointScenario(nodes=64).summary()
        snap = obs.registry().snapshot()
        assert snap["storage.io_ops"]["value"] >= 1
        assert snap["storage.achieved_bandwidth_bytes_per_s"]["count"] >= 1
        span_names = {s.name for s in obs.tracer().finished_spans()}
        assert "storage.checkpoint_summary" in span_names
        assert "storage.ingest" in span_names

    def test_bytes_written_tracks_volume(self, enabled_obs):
        from repro.storage.iosim import ingest_time
        ingest_time(2 * TiB)
        snap = obs.registry().snapshot()
        assert snap["storage.bytes_written"]["value"] == pytest.approx(2 * TiB)


class TestSchedulerMetrics:
    def test_submit_and_complete_counted(self, enabled_obs):
        from repro.scheduler.slurm import JobRequest, SlurmScheduler
        sched = SlurmScheduler(n_nodes=256)
        sched.submit(JobRequest(n_nodes=16, duration_s=10.0))
        sched.submit(JobRequest(n_nodes=200, duration_s=10.0))
        sched.run_until_idle()
        snap = obs.registry().snapshot()
        assert snap["scheduler.jobs_submitted"]["value"] == 2
        assert snap["scheduler.jobs_completed"]["value"] == 2
        assert snap["scheduler.placement_decisions"]["value"] == 2
        assert "scheduler.queue_depth" in obs.registry().names()
