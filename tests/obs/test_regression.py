"""The probe suite and the perf-regression gate's compare logic."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import regression
from repro.obs.probes import PROBES, record_machine_context, run_probes


class TestProbes:
    def test_probe_registry_covers_the_instrumented_layers(self):
        assert set(PROBES) == {"fabric", "routing", "cache", "mpi",
                               "storage", "scheduler", "sweep", "chaos",
                               "heal", "congestion", "ensemble", "serve",
                               "machines"}

    def test_unknown_probe_rejected(self):
        with pytest.raises(KeyError):
            run_probes(["nope"])

    def test_machine_context_spans_every_layer(self):
        obs.enable()
        try:
            results = record_machine_context()
        finally:
            obs.disable()
        assert set(results) == set(PROBES)
        roots = obs.tracer().roots
        assert [r.name for r in roots] == ["harness.machine_context"]
        probe_spans = {c.name for c in roots[0].children}
        assert probe_spans == {f"probe.{name}" for name in PROBES}


class TestSnapshotAndCompare:
    def test_snapshot_is_deterministic(self):
        a = regression.snapshot()
        b = regression.snapshot()
        assert regression.compare(a, b) == []
        # values must be literally identical (pinned seeds)
        assert a["probes"]["fabric"]["values"] == b["probes"]["fabric"]["values"]
        assert a["counters"] == b["counters"]

    def test_snapshot_leaves_obs_state_as_found(self):
        assert not obs.enabled()
        regression.snapshot()
        assert not obs.enabled()

    def test_value_drift_detected(self):
        base = regression.snapshot()
        cur = json.loads(json.dumps(base))
        cur["probes"]["storage"]["values"]["burst_time_s"] *= 1.5
        problems = regression.compare(base, cur)
        assert any("burst_time_s" in p for p in problems)

    def test_counter_drift_detected(self):
        base = regression.snapshot()
        cur = json.loads(json.dumps(base))
        cur["counters"]["fabric.maxmin.iterations"] += 100
        problems = regression.compare(base, cur)
        assert any("fabric.maxmin.iterations" in p for p in problems)

    def test_wall_time_regression_detected(self):
        base = regression.snapshot()
        cur = json.loads(json.dumps(base))
        cur["probes"]["fabric"]["wall_time_s"] = 1e6
        problems = regression.compare(base, cur)
        assert any("wall time regressed" in p for p in problems)

    def test_missing_probe_detected(self):
        base = regression.snapshot()
        cur = json.loads(json.dumps(base))
        del cur["probes"]["mpi"]
        assert any("missing" in p for p in regression.compare(base, cur))

    def test_wall_floor_absorbs_micro_probe_noise(self):
        base = regression.snapshot()
        cur = json.loads(json.dumps(base))
        # 0.2 s is far above any probe's real wall time but inside the
        # floored budget (10 x 0.05 s): micro-probes aren't judged on noise.
        for probe in cur["probes"].values():
            probe["wall_time_s"] = 0.2
        assert regression.compare(base, cur) == []


class TestBaselineFiles:
    def test_update_then_check_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_BASELINE.json")
        regression.update_baseline(path)
        assert regression.check_baseline(path) == []

    def test_missing_baseline_reported(self, tmp_path):
        problems = regression.check_baseline(str(tmp_path / "nope.json"))
        assert problems and "no baseline" in problems[0]

    def test_committed_baseline_passes(self):
        import os
        committed = os.path.join(os.path.dirname(__file__), os.pardir,
                                 os.pardir, "benchmarks",
                                 "BENCH_BASELINE.json")
        assert regression.check_baseline(os.path.abspath(committed)) == []
