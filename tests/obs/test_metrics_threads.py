"""Concurrent MetricsRegistry use: the scenario-service sharing contract.

``repro.serve`` shares one registry between the asyncio event loop,
batch-execution threads, and pool callbacks.  These tests hammer the
instruments from many threads while the main thread snapshots and
``merge``-s, asserting **exact** totals — a bare ``+=`` on the instrument
state loses updates under that load, so these tests pin the per-instrument
locking in :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry

N_THREADS = 8
N_OPS = 5_000


def _hammer(fn, n_threads=N_THREADS):
    """Run ``fn(thread_index)`` on ``n_threads`` threads, re-raising errors."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def run(i: int) -> None:
        try:
            barrier.wait()
            fn(i)
        except BaseException as exc:   # noqa: BLE001 - surfaced to pytest
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


class TestConcurrentCounters:
    def test_no_lost_increments(self):
        reg = MetricsRegistry(enabled=True)

        def work(i: int) -> None:
            c = reg.counter("serve.requests")
            for _ in range(N_OPS):
                c.inc()

        _hammer(work)
        assert reg.snapshot()["serve.requests"]["value"] == \
            float(N_THREADS * N_OPS)

    def test_concurrent_lookup_creates_one_instrument(self):
        reg = MetricsRegistry(enabled=True)

        def work(i: int) -> None:
            for _ in range(N_OPS):
                reg.counter("serve.shared").inc(2.0)

        _hammer(work)
        assert reg.snapshot()["serve.shared"]["value"] == \
            2.0 * N_THREADS * N_OPS

    def test_snapshot_while_incrementing(self):
        """Snapshots taken mid-hammer must be well-formed and monotone."""
        reg = MetricsRegistry(enabled=True)
        stop = threading.Event()
        seen: list[float] = []

        def snapshotter() -> None:
            while not stop.is_set():
                snap = reg.snapshot()
                if "serve.live" in snap:
                    seen.append(snap["serve.live"]["value"])

        watcher = threading.Thread(target=snapshotter)
        watcher.start()
        try:
            def work(i: int) -> None:
                c = reg.counter("serve.live")
                for _ in range(N_OPS):
                    c.inc()
            _hammer(work)
        finally:
            stop.set()
            watcher.join()
        assert reg.snapshot()["serve.live"]["value"] == \
            float(N_THREADS * N_OPS)
        assert all(a <= b for a, b in zip(seen, seen[1:]))


class TestConcurrentHistograms:
    def test_no_lost_observations(self):
        reg = MetricsRegistry(enabled=True)
        edges = (0.0, 1.0, 2.0, 4.0)

        def work(i: int) -> None:
            h = reg.histogram("serve.latency", edges=edges)
            for k in range(N_OPS):
                h.observe(float(k % 5))

        _hammer(work)
        snap = reg.snapshot()["serve.latency"]
        assert snap["count"] == N_THREADS * N_OPS
        assert snap["min"] == 0.0 and snap["max"] == 4.0
        assert sum(snap["buckets"].values()) == N_THREADS * N_OPS
        assert snap["sum"] == pytest.approx(
            N_THREADS * sum(float(k % 5) for k in range(N_OPS)))

    def test_observe_many_interleaved_with_observe(self):
        reg = MetricsRegistry(enabled=True)

        def work(i: int) -> None:
            h = reg.histogram("serve.batch")
            if i % 2:
                for _ in range(N_OPS // 10):
                    h.observe_many([0.5] * 10)
            else:
                for _ in range(N_OPS):
                    h.observe(0.5)

        _hammer(work)
        snap = reg.snapshot()["serve.batch"]
        assert snap["count"] == N_THREADS * N_OPS
        assert snap["sum"] == pytest.approx(0.5 * N_THREADS * N_OPS)


class TestConcurrentMerge:
    def test_merge_while_hammering_source(self):
        """merge() of live snapshots races the writers without exceptions,
        and a final merge of the settled source is exact."""
        source = MetricsRegistry(enabled=True)
        sink = MetricsRegistry(enabled=True)
        stop = threading.Event()

        def merger() -> None:
            while not stop.is_set():
                fresh = MetricsRegistry(enabled=True)
                fresh.merge(source.snapshot())   # must never raise

        watcher = threading.Thread(target=merger)
        watcher.start()
        try:
            def work(i: int) -> None:
                for k in range(N_OPS):
                    source.counter("serve.merged").inc()
                    source.histogram("serve.hist").observe(float(k % 3))
                    source.gauge("serve.depth").set(float(i))
            _hammer(work)
        finally:
            stop.set()
            watcher.join()
        sink.merge(source.snapshot())
        snap = sink.snapshot()
        assert snap["serve.merged"]["value"] == float(N_THREADS * N_OPS)
        assert snap["serve.hist"]["count"] == N_THREADS * N_OPS
        assert snap["serve.depth"]["value"] in {float(i)
                                                for i in range(N_THREADS)}

    def test_parallel_merges_into_one_sink(self):
        """Several threads merging worker snapshots into one summary
        registry (the sweep/serve telemetry path) must not lose counts."""
        worker_snap = None
        worker = MetricsRegistry(enabled=True)
        worker.counter("serve.tasks").inc(3.0)
        worker.histogram("serve.wall").observe_many([0.1, 0.2, 0.7])
        worker_snap = worker.snapshot()
        sink = MetricsRegistry(enabled=True)
        merges_per_thread = 50

        def work(i: int) -> None:
            for _ in range(merges_per_thread):
                sink.merge(worker_snap)

        _hammer(work)
        total = N_THREADS * merges_per_thread
        snap = sink.snapshot()
        assert snap["serve.tasks"]["value"] == 3.0 * total
        assert snap["serve.wall"]["count"] == 3 * total
        assert snap["serve.wall"]["sum"] == pytest.approx(1.0 * total)
