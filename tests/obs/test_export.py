"""JSON exporter round-trip, atomic writes, and table rendering."""

from __future__ import annotations

import json
import os

from repro.obs.export import (collapsed_stacks, export_state, render_collapsed,
                              render_metrics, render_trace, write_json)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.reporting import metrics_table, spans_table


def _populated():
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry(enabled=True)
    with tracer.span("outer", phase="solve"):
        with tracer.span("inner"):
            registry.counter("fabric.paths_computed").inc(12)
    registry.gauge("scheduler.queue_depth").set(3)
    registry.histogram("fabric.link_utilisation").observe_many([0.2, 0.9])
    return tracer, registry


class TestJsonRoundTrip:
    def test_export_survives_json_round_trip(self):
        tracer, registry = _populated()
        doc = export_state(tracer, registry, context={"run": "unit-test"})
        restored = json.loads(json.dumps(doc))
        assert restored == doc
        assert restored["schema"] == 1
        assert restored["context"]["run"] == "unit-test"
        assert restored["spans"][0]["name"] == "outer"
        assert restored["spans"][0]["children"][0]["name"] == "inner"
        assert restored["metrics"]["fabric.paths_computed"]["value"] == 12.0
        assert restored["metrics"]["fabric.link_utilisation"]["count"] == 2

    def test_write_json_is_atomic_and_loadable(self, tmp_path):
        tracer, registry = _populated()
        path = str(tmp_path / "nested" / "metrics.json")
        out = write_json(path, export_state(tracer, registry))
        assert out == path
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["metrics"]["scheduler.queue_depth"]["value"] == 3.0
        # no stray temp files left behind
        assert os.listdir(os.path.dirname(path)) == ["metrics.json"]

    def test_write_json_overwrites_previous_document(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        write_json(path, {"schema": 1, "marker": "first"})
        write_json(path, {"schema": 1, "marker": "second"})
        with open(path) as fh:
            assert json.load(fh)["marker"] == "second"


class TestHumanTables:
    def test_render_metrics_lists_every_instrument(self):
        _, registry = _populated()
        text = render_metrics(registry)
        for name in ("fabric.paths_computed", "scheduler.queue_depth",
                     "fabric.link_utilisation"):
            assert name in text

    def test_render_trace_indents_children(self):
        tracer, _ = _populated()
        text = render_trace(tracer)
        assert "outer" in text
        assert "  inner" in text
        assert "phase=solve" in text

    def test_tables_render_from_exported_dicts(self):
        tracer, registry = _populated()
        doc = json.loads(json.dumps(export_state(tracer, registry)))
        assert "outer" in spans_table(doc["spans"]).render()
        assert "fabric.paths_computed" in metrics_table(doc["metrics"]).render()


class TestCollapsedStacks:
    def test_stacks_are_semicolon_joined_and_weights_are_self_time(self):
        tracer, _ = _populated()
        stacks = collapsed_stacks(tracer)
        assert set(stacks) == {"outer", "outer;inner"}
        outer = next(s for s in tracer.roots if s.name == "outer")
        inner = outer.children[0]
        assert stacks["outer;inner"] == round(inner.duration_s * 1e6)
        expected_self = round(
            max(0.0, outer.duration_s - inner.duration_s) * 1e6)
        assert stacks["outer"] == expected_self

    def test_repeated_stacks_accumulate(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("solve"):
                pass
        stacks = collapsed_stacks(tracer)
        assert set(stacks) == {"solve"}
        total = round(sum(r.duration_s for r in tracer.roots) * 1e6)
        assert abs(stacks["solve"] - total) <= 3  # per-span rounding

    def test_render_is_flamegraph_pl_format(self):
        tracer, _ = _populated()
        for line in render_collapsed(tracer).splitlines():
            stack, _, weight = line.rpartition(" ")
            assert stack and weight.isdigit()

    def test_empty_tracer_renders_nothing(self):
        assert render_collapsed(Tracer(enabled=True)) == ""
