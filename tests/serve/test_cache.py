"""The two-level response cache and its shared-ledger semantics."""

from __future__ import annotations

import os

from repro import obs
from repro.serve.cache import ResponseCache
from repro.sweep.artifacts import (ARTIFACT_SCHEMA_VERSION, artifact_path,
                                   write_artifact)


def make_doc(task_id: str, status: str = "ok") -> dict:
    doc = {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "task": {"id": task_id, "probe": "storage", "seed": 1, "axes": {},
                 "spec": {"name": "tiny"}},
        "status": status,
        "timing": {"wall_time_s": 0.01, "attempts": 1},
        "metrics": {},
    }
    if status == "ok":
        doc["values"] = {"x": 1.0}
    else:
        doc["error"] = {"type": "RuntimeError", "message": "boom"}
    return doc


class TestCache:
    def test_miss_then_memory_hit(self, tmp_path):
        cache = ResponseCache(str(tmp_path))
        assert cache.get("aaaa000011112222") is None
        doc = make_doc("aaaa000011112222")
        cache.put(doc)
        assert cache.get("aaaa000011112222") == doc

    def test_put_persists_to_the_ledger(self, tmp_path):
        cache = ResponseCache(str(tmp_path))
        cache.put(make_doc("aaaa000011112222"))
        assert os.path.exists(
            artifact_path(str(tmp_path), "aaaa000011112222"))

    def test_disk_hit_from_a_sweep_artifact(self, tmp_path):
        """A spec already swept is a cache hit on its first request."""
        write_artifact(str(tmp_path), make_doc("bbbb000011112222"))
        cache = ResponseCache(str(tmp_path))
        doc = cache.get("bbbb000011112222")
        assert doc is not None and doc["status"] == "ok"

    def test_error_documents_are_not_served(self, tmp_path):
        cache = ResponseCache(str(tmp_path))
        cache.put(make_doc("cccc000011112222", status="error"))
        # persisted as an ordinary artifact (the --gc target) ...
        assert os.path.exists(
            artifact_path(str(tmp_path), "cccc000011112222"))
        # ... but the next identical request re-evaluates
        assert cache.get("cccc000011112222") is None

    def test_memory_is_a_bounded_lru(self, tmp_path):
        cache = ResponseCache(str(tmp_path), slots=2)
        for tid in ("aaaa000011112222", "bbbb000011112222",
                    "cccc000011112222"):
            cache.put(make_doc(tid))
        assert len(cache) == 2
        # the evicted entry still answers from disk (the ledger level)
        assert cache.get("aaaa000011112222") is not None

    def test_hit_miss_counters(self, tmp_path):
        obs.enable(tracing=False)
        cache = ResponseCache(str(tmp_path))
        cache.get("aaaa000011112222")
        cache.get("bbbb000011112222", record_miss=False)
        cache.put(make_doc("aaaa000011112222"))
        cache.get("aaaa000011112222")
        snap = obs.registry().snapshot()
        assert snap["serve.cache_misses"]["value"] == 1.0
        assert snap["serve.cache_hits"]["value"] == 1.0
        assert snap["serve.cache_hits_memory"]["value"] == 1.0
