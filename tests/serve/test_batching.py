"""Batch formation (compatibility, coalescing, caps) and execution."""

from __future__ import annotations

from repro.core.scenario import frontier_spec
from repro.serve.batching import (_ensemble_groups, batch_key,
                                  execute_batch, form_batches,
                                  PendingRequest)
from repro.serve.protocol import ScenarioRequest
from repro.sweep.runner import ExecPolicy

SMALL = frontier_spec().scaled(6, 4, 4)
OTHER = frontier_spec().scaled(4, 4, 4)


def pending(probe="storage", spec=SMALL, seed=0):
    req = ScenarioRequest(probe=probe, spec=spec, seed=seed)
    return PendingRequest(req, req.task(), future=None, enqueued_at=0.0)


class TestBatchKey:
    def test_same_fabric_and_probe_share_a_key(self):
        assert batch_key(pending(seed=0).task) == \
            batch_key(pending(seed=7).task)

    def test_different_fabric_or_probe_split(self):
        assert batch_key(pending().task) != \
            batch_key(pending(spec=OTHER).task)
        assert batch_key(pending().task) != \
            batch_key(pending(probe="placement").task)


class TestFormBatches:
    def test_compatible_requests_form_one_batch(self):
        items = [pending(seed=i) for i in range(5)]
        batches = form_batches(items)
        assert len(batches) == 1
        assert batches[0] == items

    def test_incompatible_requests_split(self):
        items = [pending(), pending(spec=OTHER), pending(probe="placement")]
        assert len(form_batches(items)) == 3

    def test_max_batch_caps_unique_tasks(self):
        items = [pending(seed=i) for i in range(5)]
        batches = form_batches(items, max_batch=2)
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_duplicates_ride_their_home_batch(self):
        """A repeat of a task always joins the batch evaluating it, even
        after the cap opened a newer batch for its key."""
        a, b, c = pending(seed=0), pending(seed=1), pending(seed=2)
        a2 = pending(seed=0)   # same task as a
        batches = form_batches([a, b, c, a2], max_batch=2)
        assert [len(b) for b in batches] == [3, 1]
        assert a2 in batches[0]
        assert c in batches[1]

    def test_coalesced_duplicates_do_not_count_toward_the_cap(self):
        items = [pending(seed=0) for _ in range(10)]
        batches = form_batches(items, max_batch=2)
        assert len(batches) == 1
        assert len(batches[0]) == 10


class TestExecuteBatch:
    def test_docs_keyed_by_task_id(self):
        tasks = [pending(seed=i).task for i in range(3)]
        docs = execute_batch(tasks, ExecPolicy(workers=0))
        assert sorted(docs) == sorted(t.task_id for t in tasks)
        assert all(doc["status"] == "ok" for doc in docs.values())

    def test_matches_direct_execution(self):
        task = pending(seed=3).task
        from repro.sweep.runner import execute_task
        direct = execute_task(task, isolate_obs=False)
        batched = execute_batch([task], ExecPolicy(workers=0))[task.task_id]
        assert batched["values"] == direct["values"]


def congest_task(ecn=True, ecn_k=30.0, spec=SMALL):
    import dataclasses
    cong = dataclasses.replace(spec.congestion, ecn=ecn, ecn_k=ecn_k)
    variant = dataclasses.replace(spec, congestion=cong)
    return pending(probe="congest", spec=variant).task


class TestEnsembleFastPath:
    def test_ecn_variants_group_under_one_key(self):
        tasks = [congest_task(True, 10.0), congest_task(True, 60.0),
                 congest_task(False), pending(probe="storage").task]
        groups, rest = _ensemble_groups(tasks)
        assert len(groups) == 1
        assert len(groups[0]) == 3            # the three congest variants
        assert rest == [tasks[3]]             # storage takes the normal path

    def test_singleton_congest_task_takes_normal_path(self):
        tasks = [congest_task(True, 10.0)]
        groups, rest = _ensemble_groups(tasks)
        assert groups == [] and rest == tasks

    def test_different_fabrics_never_group(self):
        tasks = [congest_task(spec=SMALL), congest_task(spec=OTHER)]
        groups, rest = _ensemble_groups(tasks)
        assert groups == [] and len(rest) == 2

    def test_fast_path_values_equal_per_task_execution(self):
        from repro.sweep.runner import execute_task
        tasks = [congest_task(True, 10.0), congest_task(True, 60.0),
                 congest_task(False)]
        docs = execute_batch(tasks, ExecPolicy(workers=0))
        assert sorted(docs) == sorted(t.task_id for t in tasks)
        for task in tasks:
            direct = execute_task(task, isolate_obs=False)
            assert docs[task.task_id]["values"] == direct["values"]
            assert docs[task.task_id]["status"] == "ok"
        sizes = {docs[t.task_id]["timing"]["ensemble_size"] for t in tasks}
        assert sizes == {3}

    def test_mixed_batch_answers_everything(self):
        tasks = [congest_task(True, 10.0), congest_task(True, 60.0),
                 pending(probe="storage", seed=5).task]
        docs = execute_batch(tasks, ExecPolicy(workers=0))
        assert sorted(docs) == sorted(t.task_id for t in tasks)
        assert all(doc["status"] == "ok" for doc in docs.values())
