"""Batch formation (compatibility, coalescing, caps) and execution."""

from __future__ import annotations

from repro.core.scenario import frontier_spec
from repro.serve.batching import (batch_key, execute_batch, form_batches,
                                  PendingRequest)
from repro.serve.protocol import ScenarioRequest
from repro.sweep.runner import ExecPolicy

SMALL = frontier_spec().scaled(6, 4, 4)
OTHER = frontier_spec().scaled(4, 4, 4)


def pending(probe="storage", spec=SMALL, seed=0):
    req = ScenarioRequest(probe=probe, spec=spec, seed=seed)
    return PendingRequest(req, req.task(), future=None, enqueued_at=0.0)


class TestBatchKey:
    def test_same_fabric_and_probe_share_a_key(self):
        assert batch_key(pending(seed=0).task) == \
            batch_key(pending(seed=7).task)

    def test_different_fabric_or_probe_split(self):
        assert batch_key(pending().task) != \
            batch_key(pending(spec=OTHER).task)
        assert batch_key(pending().task) != \
            batch_key(pending(probe="placement").task)


class TestFormBatches:
    def test_compatible_requests_form_one_batch(self):
        items = [pending(seed=i) for i in range(5)]
        batches = form_batches(items)
        assert len(batches) == 1
        assert batches[0] == items

    def test_incompatible_requests_split(self):
        items = [pending(), pending(spec=OTHER), pending(probe="placement")]
        assert len(form_batches(items)) == 3

    def test_max_batch_caps_unique_tasks(self):
        items = [pending(seed=i) for i in range(5)]
        batches = form_batches(items, max_batch=2)
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_duplicates_ride_their_home_batch(self):
        """A repeat of a task always joins the batch evaluating it, even
        after the cap opened a newer batch for its key."""
        a, b, c = pending(seed=0), pending(seed=1), pending(seed=2)
        a2 = pending(seed=0)   # same task as a
        batches = form_batches([a, b, c, a2], max_batch=2)
        assert [len(b) for b in batches] == [3, 1]
        assert a2 in batches[0]
        assert c in batches[1]

    def test_coalesced_duplicates_do_not_count_toward_the_cap(self):
        items = [pending(seed=0) for _ in range(10)]
        batches = form_batches(items, max_batch=2)
        assert len(batches) == 1
        assert len(batches[0]) == 10


class TestExecuteBatch:
    def test_docs_keyed_by_task_id(self):
        tasks = [pending(seed=i).task for i in range(3)]
        docs = execute_batch(tasks, ExecPolicy(workers=0))
        assert sorted(docs) == sorted(t.task_id for t in tasks)
        assert all(doc["status"] == "ok" for doc in docs.values())

    def test_matches_direct_execution(self):
        task = pending(seed=3).task
        from repro.sweep.runner import execute_task
        direct = execute_task(task, isolate_obs=False)
        batched = execute_batch([task], ExecPolicy(workers=0))[task.task_id]
        assert batched["values"] == direct["values"]
