"""Wire protocol: framing, validation, and sweep-identity equivalence."""

from __future__ import annotations

import pytest

from repro.core.scenario import frontier_spec
from repro.errors import ProtocolError
from repro.serve.protocol import (SERVE_SCHEMA_VERSION, ScenarioRequest,
                                  ScenarioResponse, decode_line, encode_line)
from repro.sweep import SweepPlan

SMALL = frontier_spec().scaled(6, 4, 4)


class TestFraming:
    def test_encode_decode_round_trip(self):
        doc = {"probe": "storage", "seed": 3}
        line = encode_line(doc)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_line(line) == doc

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json at all\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line(b'["a", "list"]\n')


class TestRequestValidation:
    def test_minimal_request_defaults_to_frontier(self):
        req = ScenarioRequest.from_wire({"probe": "storage"})
        assert req.spec == frontier_spec()
        assert req.seed == 0
        assert req.timeout_s is None

    def test_family_resolution(self):
        req = ScenarioRequest.from_wire({"probe": "storage",
                                         "family": "summit"})
        assert req.spec.family == "summit"

    def test_spec_payload(self):
        req = ScenarioRequest.from_wire({"probe": "storage",
                                         "spec": SMALL.to_dict()})
        assert req.spec == SMALL

    def test_scaled_applies_to_family(self):
        req = ScenarioRequest.from_wire({"probe": "storage",
                                         "scaled": [6, 4, 4]})
        assert req.spec == SMALL

    @pytest.mark.parametrize("doc", [
        {"probe": "storage", "spec": SMALL.to_dict(), "family": "frontier"},
        {"probe": "storage", "family": "not-a-machine"},
        {"probe": "nope"},
        {},
        {"probe": "storage", "seed": "seven"},
        {"probe": "storage", "seed": True},
        {"probe": "storage", "scaled": [6, 4]},
        {"probe": "storage", "scaled": "big"},
        {"probe": "storage", "timeout_s": -1},
        {"probe": "storage", "timeout_s": "soon"},
        {"probe": "storage", "schema": 99},
        {"probe": "storage", "spec": {"schema": 99}},
    ])
    def test_bad_requests_raise_protocol_error(self, doc):
        with pytest.raises(ProtocolError):
            ScenarioRequest.from_wire(doc)

    def test_request_wire_round_trip(self):
        req = ScenarioRequest.from_wire(
            {"probe": "storage", "spec": SMALL.to_dict(), "seed": 5,
             "id": "r1", "timeout_s": 2.5})
        assert ScenarioRequest.from_wire(req.to_wire()) == req


class TestSweepIdentity:
    def test_served_task_matches_sweep_grid_point(self):
        """One ledger, one hash: a served request and the same sweep grid
        point must name the identical artifact."""
        plan = SweepPlan.grid(SMALL, {}, probes=("storage",), seed=5)
        req = ScenarioRequest(probe="storage", spec=SMALL, seed=5)
        assert req.task().task_id == plan.tasks[0].task_id

    def test_seed_selects_distinct_tasks(self):
        a = ScenarioRequest(probe="storage", spec=SMALL, seed=0).task()
        b = ScenarioRequest(probe="storage", spec=SMALL, seed=1).task()
        assert a.task_id != b.task_id


class TestResponse:
    def test_wire_round_trip(self):
        resp = ScenarioResponse(id="r1", status="ok", task_id="ab" * 8,
                                values={"x": 1.5}, cached=True, batch_size=4,
                                wall_time_s=0.25)
        doc = resp.to_wire()
        assert doc["schema"] == SERVE_SCHEMA_VERSION
        assert ScenarioResponse.from_wire(doc) == resp

    def test_shed_carries_429(self):
        req = ScenarioRequest(probe="storage", spec=SMALL, id="r9")
        resp = ScenarioResponse.shed(req, queue_depth=8)
        assert resp.status == "shed"
        assert not resp.ok
        assert resp.error["code"] == 429
        assert resp.error["type"] == "Overloaded"
        assert resp.id == "r9"

    def test_from_artifact_ok_and_error(self):
        req = ScenarioRequest(probe="storage", spec=SMALL, id="r1")
        ok = ScenarioResponse.from_artifact(
            req, {"status": "ok", "task": {"id": "t1"}, "values": {"x": 1.0}},
            cached=False, batch_size=2, wall_time_s=0.1)
        assert ok.ok and ok.values == {"x": 1.0} and ok.batch_size == 2
        err = ScenarioResponse.from_artifact(
            req, {"status": "error", "task": {"id": "t2"},
                  "error": {"type": "RuntimeError", "message": "boom"}},
            cached=False, batch_size=1, wall_time_s=0.1)
        assert err.status == "error"
        assert err.error["type"] == "RuntimeError"

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError):
            ScenarioResponse(id="x", status="maybe")
        with pytest.raises(ProtocolError):
            ScenarioResponse.from_wire({"id": "x", "status": "maybe"})
