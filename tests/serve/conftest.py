"""Serve tests share a small spec and always start obs from a clean slate."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
