"""The service loop: batching, caching, shedding, timeouts, drain, TCP.

No pytest-asyncio in the container: each test drives its own event loop
with ``asyncio.run``.  Services run with ``workers=0`` (inline in a
thread) except the one pool test, and with manual ``flush()`` instead of
waiting on the ticker wherever determinism matters.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.core.scenario import frontier_spec
from repro.serve import (ScenarioRequest, ScenarioService, ServeConfig,
                         query, run_local)
from repro.serve.protocol import decode_line, encode_line

SMALL = frontier_spec().scaled(6, 4, 4)


def request(probe="storage", seed=0, rid="", timeout_s=None):
    return ScenarioRequest(probe=probe, spec=SMALL, seed=seed, id=rid,
                           timeout_s=timeout_s)


def make_service(tmp_path, **kw):
    kw.setdefault("out_dir", str(tmp_path / "ledger"))
    kw.setdefault("workers", 0)
    # A long window: tests that want determinism flush() by hand.
    kw.setdefault("batch_window_s", 60.0)
    return ScenarioService(ServeConfig(**kw))


async def started(tmp_path, **kw):
    service = make_service(tmp_path, **kw)
    await service.start()
    return service


class TestSubmitFlush:
    def test_batch_answers_every_request(self, tmp_path):
        async def run():
            service = await started(tmp_path)
            futs = [service.submit(request(seed=i)) for i in range(4)]
            await service.flush()
            responses = await asyncio.gather(*futs)
            await service.drain()
            return responses

        responses = asyncio.run(run())
        assert all(r.ok for r in responses)
        assert all(r.batch_size == 4 for r in responses)
        assert all(not r.cached for r in responses)
        assert len({r.task_id for r in responses}) == 4

    def test_identical_requests_coalesce_to_one_evaluation(self, tmp_path):
        async def run():
            obs.enable(tracing=False)
            service = await started(tmp_path)
            futs = [service.submit(request(seed=7)) for _ in range(5)]
            await service.flush()
            responses = await asyncio.gather(*futs)
            await service.drain()
            return responses, obs.registry().snapshot()

        responses, snap = asyncio.run(run())
        assert all(r.ok for r in responses)
        assert len({r.task_id for r in responses}) == 1
        assert snap["serve.batches"]["value"] == 1.0
        assert snap["serve.coalesced"]["value"] == 4.0

    def test_second_submit_is_a_cache_hit(self, tmp_path):
        async def run():
            service = await started(tmp_path)
            first = service.submit(request(seed=1))
            await service.flush()
            again = service.submit(request(seed=1))
            responses = await asyncio.gather(first, again)
            await service.drain()
            return responses

        first, again = asyncio.run(run())
        assert not first.cached and again.cached
        assert again.values == first.values
        assert again.task_id == first.task_id

    def test_ledger_survives_restart(self, tmp_path):
        """The disk level: a new service instance (fresh memory) answers
        from the artifacts the previous one wrote."""
        async def run(expect_cached):
            service = await started(tmp_path)
            fut = service.submit(request(seed=2))
            await service.flush()
            response = await fut
            await service.drain()
            assert response.cached is expect_cached
            return response

        cold = asyncio.run(run(False))
        warm = asyncio.run(run(True))
        assert warm.values == cold.values

    def test_probe_error_is_a_structured_response(self, tmp_path):
        async def run():
            service = await started(tmp_path)
            fut = service.submit(request(probe="failing"))
            await service.flush()
            response = await fut
            # errors are not cached: the next ask re-evaluates
            again = service.submit(request(probe="failing"))
            await service.flush()
            await service.drain()
            return response, await again

        response, again = asyncio.run(run())
        assert response.status == "error"
        assert response.error["type"] == "RuntimeError"
        assert again.status == "error" and not again.cached

    def test_ticker_flushes_without_manual_flush(self, tmp_path):
        async def run():
            service = await started(tmp_path, batch_window_s=0.01)
            response = await asyncio.wait_for(
                service.submit(request(seed=3)), timeout=10.0)
            await service.drain()
            return response

        assert asyncio.run(run()).ok


class TestBackpressure:
    def test_overflow_sheds_with_429(self, tmp_path):
        async def run():
            obs.enable(tracing=False)
            service = await started(tmp_path, queue_depth=2)
            futs = [service.submit(request(seed=i)) for i in range(5)]
            shed = [f for f in futs if f.done()]
            await service.flush()
            responses = await asyncio.gather(*futs)
            await service.drain()
            return responses, len(shed), obs.registry().snapshot()

        responses, shed_immediately, snap = asyncio.run(run())
        shed = [r for r in responses if r.status == "shed"]
        served = [r for r in responses if r.ok]
        assert len(shed) == 3 and len(served) == 2
        assert shed_immediately == 3   # refused synchronously, not queued
        assert all(r.error["code"] == 429 for r in shed)
        assert snap["serve.shed"]["value"] == 3.0

    def test_queue_drains_then_admits_again(self, tmp_path):
        async def run():
            service = await started(tmp_path, queue_depth=1)
            first = service.submit(request(seed=0))
            await service.flush()
            second = service.submit(request(seed=1))
            await service.flush()
            responses = await asyncio.gather(first, second)
            await service.drain()
            return responses

        assert all(r.ok for r in asyncio.run(run()))

    def test_per_request_timeout_expires_in_queue(self, tmp_path):
        async def run():
            service = await started(tmp_path)
            doomed = service.submit(request(seed=0, timeout_s=0.01))
            patient = service.submit(request(seed=1))
            await asyncio.sleep(0.05)
            await service.flush()
            responses = await asyncio.gather(doomed, patient)
            await service.drain()
            return responses

        doomed, patient = asyncio.run(run())
        assert doomed.status == "timeout"
        assert doomed.error["type"] == "TimeoutError"
        assert patient.ok


class TestDrain:
    def test_drain_answers_pending_then_sheds(self, tmp_path):
        async def run():
            service = await started(tmp_path)
            fut = service.submit(request(seed=0))
            await service.drain()
            late = service.submit(request(seed=9))
            return await fut, await late

        answered, late = asyncio.run(run())
        assert answered.ok
        assert late.status == "shed"

    def test_drain_on_idle_service_is_clean(self, tmp_path):
        async def run():
            service = await started(tmp_path)
            await service.drain()

        asyncio.run(run())


class TestWorkerPool:
    def test_pool_path_merges_worker_metrics(self, tmp_path):
        async def run():
            obs.enable(tracing=False)
            service = await started(tmp_path, workers=1)
            futs = [service.submit(request(seed=i)) for i in range(2)]
            await service.flush()
            responses = await asyncio.gather(*futs)
            await service.drain()
            return responses, obs.registry().snapshot()

        responses, snap = asyncio.run(run())
        assert all(r.ok for r in responses)
        # worker-isolated registries were folded into the service's
        assert any(not name.startswith("serve.") for name in snap)


class TestTcpFrontend:
    def test_query_round_trip_batches_then_caches(self, tmp_path):
        async def run():
            service = await started(tmp_path, batch_window_s=0.01)
            server = await service.serve_tcp()
            host, port = server.sockets[0].getsockname()[:2]
            cold = await query(host, port,
                               [request(seed=i, rid=f"c{i}")
                                for i in range(6)])
            warm = await query(host, port,
                               [request(seed=i, rid=f"w{i}")
                                for i in range(6)])
            server.close()
            await server.wait_closed()
            await service.drain()
            return cold, warm

        cold, warm = asyncio.run(run())
        assert all(r.ok for r in cold + warm)
        assert [r.id for r in cold] == [f"c{i}" for i in range(6)]
        assert max(r.batch_size for r in cold) >= 2
        assert all(r.cached for r in warm)

    def test_bad_lines_answer_400_without_killing_the_connection(
            self, tmp_path):
        async def run():
            service = await started(tmp_path, batch_window_s=0.01)
            server = await service.serve_tcp()
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"garbage\n")
            writer.write(encode_line({"probe": "nope", "id": "bad"}))
            writer.write(encode_line(
                request(seed=0, rid="good").to_wire()))
            await writer.drain()
            docs = [decode_line(await asyncio.wait_for(reader.readline(),
                                                       10.0))
                    for _ in range(3)]
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await service.drain()
            return docs

        docs = asyncio.run(run())
        by_id = {doc["id"]: doc for doc in docs}
        assert by_id["good"]["status"] == "ok"
        assert by_id["bad"]["status"] == "error"
        assert by_id["bad"]["error"]["code"] == 400
        assert by_id[""]["error"]["code"] == 400


class TestRunLocal:
    def test_local_matches_served_values(self, tmp_path):
        local = run_local(request(seed=4))

        async def run():
            service = await started(tmp_path)
            fut = service.submit(request(seed=4))
            await service.flush()
            response = await fut
            await service.drain()
            return response

        served = asyncio.run(run())
        assert local.ok and served.ok
        assert local.values == served.values
        assert local.task_id == served.task_id

    def test_local_error_is_structured(self):
        response = run_local(request(probe="failing"))
        assert response.status == "error"
        assert response.error["type"] == "RuntimeError"


class TestQueryClientErrors:
    def test_query_rejects_duplicate_ids(self, tmp_path):
        from repro.errors import ProtocolError

        async def run():
            await query("127.0.0.1", 1,
                        [request(rid="x"), request(rid="x")])

        with pytest.raises(ProtocolError):
            asyncio.run(run())
