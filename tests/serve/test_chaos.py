"""Serve under chaos: a probe dying mid-batch must not poison the service.

The failure contract, end to end: a worker raising inside a batch yields
a structured error response for that request only, the error artifact is
persisted to the disk ledger (an audit trail), the cache never admits it
(the next identical request re-evaluates instead of replaying the
failure), and the service still drains cleanly afterwards.  Same
``asyncio.run``-per-test idiom as ``test_service.py``.
"""

from __future__ import annotations

import asyncio
import json
import os

from repro.core.scenario import frontier_spec
from repro.serve import ScenarioRequest, ScenarioService, ServeConfig
from repro.sweep.artifacts import artifact_path

SMALL = frontier_spec().scaled(6, 4, 4)


def request(probe="storage", seed=0, rid=""):
    return ScenarioRequest(probe=probe, spec=SMALL, seed=seed, id=rid)


def make_service(tmp_path, **kw):
    kw.setdefault("out_dir", str(tmp_path / "ledger"))
    kw.setdefault("workers", 0)
    kw.setdefault("batch_window_s", 60.0)
    return ScenarioService(ServeConfig(**kw))


class TestFailureMidBatch:
    def test_one_dying_probe_does_not_poison_its_batch_mates(self, tmp_path):
        async def run():
            service = make_service(tmp_path)
            await service.start()
            futs = [service.submit(request(seed=i)) for i in range(3)]
            futs.append(service.submit(request(probe="failing", rid="boom")))
            await service.flush()
            responses = await asyncio.gather(*futs)
            await service.drain()
            return responses

        responses = asyncio.run(run())
        healthy = [r for r in responses if r.id != "boom"]
        (failed,) = [r for r in responses if r.id == "boom"]
        assert all(r.ok for r in healthy)
        assert failed.status == "error"
        assert failed.error["type"] == "RuntimeError"

    def test_error_artifact_persisted_but_never_cached(self, tmp_path):
        async def run():
            service = make_service(tmp_path)
            await service.start()
            first = service.submit(request(probe="failing"))
            await service.flush()
            again = service.submit(request(probe="failing"))
            await service.flush()
            await service.drain()
            return await first, await again

        first, again = asyncio.run(run())
        assert first.status == "error"
        # the ledger keeps the structured failure for post-mortems...
        path = artifact_path(str(tmp_path / "ledger"), first.task_id)
        assert os.path.exists(path)
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["status"] == "error"
        assert doc["error"]["type"] == "RuntimeError"
        # ...but the cache refused it: the second ask re-evaluated
        assert again.status == "error"
        assert not again.cached

    def test_transient_failure_recovers_on_the_next_request(
            self, tmp_path, monkeypatch):
        """The flaky probe fails once then succeeds: because errors are
        never cached, the *next request* (not a same-task retry) gets the
        recovered evaluation."""
        monkeypatch.setenv("REPRO_SWEEP_FLAKY_DIR", str(tmp_path))

        async def run():
            service = make_service(tmp_path)
            await service.start()
            first = service.submit(request(probe="flaky"))
            await service.flush()
            second = service.submit(request(probe="flaky"))
            await service.flush()
            third = service.submit(request(probe="flaky"))
            await service.flush()
            await service.drain()
            return await first, await second, await third

        first, second, third = asyncio.run(run())
        assert first.status == "error"
        assert second.ok and not second.cached   # re-evaluated, recovered
        assert third.ok and third.cached         # ok docs do cache

    def test_drain_is_clean_after_a_failed_batch(self, tmp_path):
        """The SIGTERM path (serve's signal handler awaits drain()): a
        batch failure must leave nothing that wedges the shutdown."""
        async def run():
            service = make_service(tmp_path)
            await service.start()
            doomed = service.submit(request(probe="failing"))
            pending = service.submit(request(seed=5))
            await service.drain()    # answers both, then sheds new work
            late = service.submit(request(seed=6))
            return await doomed, await pending, await late

        doomed, pending, late = asyncio.run(run())
        assert doomed.status == "error"
        assert pending.ok
        assert late.status == "shed"
