"""CLI tests (python -m repro)."""

import json
import re
from pathlib import Path

import pytest

from repro.__main__ import COMMANDS, build_parser, main


class TestCommands:
    @pytest.mark.parametrize("command", ["specs", "storage", "stream",
                                         "apps", "scorecard", "software"])
    def test_command_runs_and_prints(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert len(out) > 100

    def test_specs_content(self, capsys):
        main(["specs"])
        out = capsys.readouterr().out
        assert "9472" in out
        assert "2.0 EF" in out
        assert "270.1" in out

    def test_apps_content(self, capsys):
        main(["apps"])
        out = capsys.readouterr().out
        for name in ("CoMet", "Cholla", "WarpX", "ExaSMR"):
            assert name in out

    def test_scorecard_content(self, capsys):
        main(["scorecard"])
        out = capsys.readouterr().out
        assert "pass" in out and "struggle" in out
        assert "True" in out   # meets the spirit of exascale

    def test_gpcnet_content(self, capsys):
        main(["gpcnet"])
        out = capsys.readouterr().out
        assert "Isolated" in out and "Congested" in out
        assert "Allreduce" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_registry_matches_doc(self):
        assert set(COMMANDS) == {"specs", "storage", "stream", "gpcnet",
                                 "apps", "scorecard", "software",
                                 "evaluate"}


class TestEvaluateJson:
    def test_emits_valid_json(self, capsys):
        main(["evaluate"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["meets_spirit_of_exascale"] is True
        assert len(payload["table6"]) == 6
        assert len(payload["table7"]) == 5


class TestObservabilityVerbs:
    """python -m repro trace / metrics (see repro.obs)."""

    def teardown_method(self):
        from repro import obs
        obs.disable()
        obs.reset()

    def test_trace_probe_suite_prints_span_tree(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        for layer in ("probe.fabric", "probe.mpi", "probe.storage",
                      "probe.scheduler"):
            assert layer in out
        assert "fabric.maxmin_allocate" in out

    def test_trace_report_command(self, capsys):
        assert main(["trace", "storage"]) == 0
        out = capsys.readouterr().out
        assert "Trace: storage" in out

    def test_metrics_probe_suite_prints_table(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "fabric.paths_computed" in out
        assert "mpi.p2p_messages" in out
        assert "storage.io_ops" in out

    def test_metrics_json_document(self, capsys):
        assert main(["metrics", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        assert "fabric.paths_computed" in doc["metrics"]
        assert doc["spans"]

    def test_metrics_out_writes_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["metrics", "--out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert "fabric.paths_computed" in doc["metrics"]

    def test_metrics_baseline_round_trip(self, tmp_path, capsys):
        path = tmp_path / "BENCH_BASELINE.json"
        assert main(["metrics", "--update-baseline",
                     "--baseline", str(path)]) == 0
        assert main(["metrics", "--check", "--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "gate passed" in out

    def test_trace_collapsed_emits_folded_stacks(self, capsys):
        assert main(["trace", "--collapsed"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and weight.isdigit()
        assert any(line.startswith("probe.fabric;fabric.flow_bandwidths")
                   for line in lines)


class TestScenarioVerbs:
    """python -m repro scenario / mpigraph (see repro.core.scenario)."""

    def test_scenario_prints_frontier_spec(self, capsys):
        assert main(["scenario"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "frontier"
        assert doc["node_count"] == 9472
        assert doc["fabric"]["kind"] == "dragonfly"

    def test_scenario_out_round_trips_through_mpigraph(self, tmp_path,
                                                       capsys):
        from repro.core.scenario import MachineSpec
        path = tmp_path / "small.json"
        assert main(["scenario", "--scaled", "6", "4", "4",
                     "--out", str(path)]) == 0
        spec = MachineSpec.load(str(path))
        assert spec.fabric.groups == 6
        capsys.readouterr()
        assert main(["mpigraph", "--spec", str(path), "--bins", "8"]) == 0
        out = capsys.readouterr().out
        assert "flow-level" in out
        assert "spread" in out

    def test_mpigraph_full_scale_uses_analytic_accounting(self, capsys):
        assert main(["mpigraph"]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out
        assert "frontier" in out


class TestSweepVerb:
    """python -m repro sweep (see repro.sweep)."""

    @staticmethod
    def args(tmp_path, *extra):
        return ["sweep", "--axis", "disabled_nodes=0,1", "--probe",
                "storage", "--workers", "0", "--backoff", "0",
                "--out", str(tmp_path), *extra]

    def test_sweep_runs_then_resumes(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "run: 2" in out and "skipped: 0" in out
        assert "disabled_nodes" in out            # axes become table columns
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert main(self.args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "run: 0" in out and "skipped: 2" in out

    def test_fresh_reruns(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        assert main(self.args(tmp_path, "--fresh")) == 0
        assert "run: 2" in capsys.readouterr().out

    def test_list_prints_grid_without_running(self, tmp_path, capsys):
        assert main(self.args(tmp_path, "--list")) == 0
        assert "2 tasks" in capsys.readouterr().out
        assert list(tmp_path.glob("*.json")) == []

    def test_malformed_axis_is_a_usage_error(self, tmp_path, capsys):
        assert main(["sweep", "--axis", "scale", "--workers", "0",
                     "--out", str(tmp_path)]) == 2
        assert "key=v1,v2" in capsys.readouterr().err

    def test_unknown_probe_is_a_usage_error(self, tmp_path, capsys):
        assert main(["sweep", "--probe", "frobnicate", "--workers", "0",
                     "--out", str(tmp_path)]) == 2
        assert "unknown sweep probes" in capsys.readouterr().err

    def test_every_task_failing_is_a_hard_error(self, tmp_path, capsys):
        assert main(["sweep", "--probe", "failing", "--workers", "0",
                     "--retries", "0", "--backoff", "0",
                     "--out", str(tmp_path)]) == 1
        assert "failed: 1" in capsys.readouterr().out


class TestChaosVerb:
    """python -m repro chaos (see repro.chaos)."""

    @staticmethod
    def args(tmp_path, *extra):
        return ["chaos", "--scaled", "8", "4", "4", "--seed", "0",
                "--hours", "24", "--failure-scale", "50",
                "--out", str(tmp_path), *extra]

    def test_chaos_runs_then_resumes(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "Achieved vs ideal efficiency" in out
        assert "machine availability" in out
        assert "(written)" in out
        artifacts = list(tmp_path.glob("chaos-*.json"))
        assert len(artifacts) == 1
        assert main(self.args(tmp_path)) == 0
        assert "(resumed)" in capsys.readouterr().out

    def test_fresh_reruns_identically(self, tmp_path, capsys):
        assert main(self.args(tmp_path, "--json")) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(self.args(tmp_path, "--json", "--fresh")) == 0
        assert json.loads(capsys.readouterr().out) == first
        assert first["status"] == "ok"

    def test_policy_knobs_change_the_artifact(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        assert main(self.args(tmp_path, "--policy", "fixed",
                              "--interval", "600")) == 0
        assert len(list(tmp_path.glob("chaos-*.json"))) == 2

    def test_validate_passes_and_prints_ratios(self, capsys):
        assert main(["chaos", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "Chaos cross-validation" in out
        assert "validation PASSED" in out

    @staticmethod
    def heal_args(tmp_path, *extra):
        return ["chaos", "--heal", "--scaled", "8", "4", "4", "--seed", "0",
                "--hours", "48", "--failure-scale", "200",
                "--uniform-blast", "--mttr-scale", "0.1",
                "--out", str(tmp_path), *extra]

    def test_heal_runs_then_resumes_with_report(self, tmp_path, capsys):
        assert main(self.heal_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "heal:" in out
        assert "replacements" in out
        assert "job availability" in out
        assert "(written)" in out
        assert main(self.heal_args(tmp_path)) == 0
        assert "(resumed)" in capsys.readouterr().out

    def test_heal_artifact_distinct_from_unhealed(self, tmp_path, capsys):
        assert main(self.heal_args(tmp_path)) == 0
        assert main(["chaos", "--scaled", "8", "4", "4", "--seed", "0",
                     "--hours", "48", "--failure-scale", "200",
                     "--uniform-blast", "--mttr-scale", "0.1",
                     "--out", str(tmp_path)]) == 0
        assert len(list(tmp_path.glob("chaos-*.json"))) == 2

    def test_heal_json_carries_the_heal_report(self, tmp_path, capsys):
        assert main(self.heal_args(tmp_path, "--json")) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["heal"]["spare_target"] == 4
        assert doc["heal"]["adaptive"] is True

    def test_heal_validate_runs_the_three_arm_gate(self, capsys):
        assert main(["chaos", "--heal", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "Self-healing cross-validation" in out
        assert "validation PASSED" in out


class TestCongestVerb:
    """python -m repro congest (see repro.fabric.timeflow)."""

    @staticmethod
    def args(tmp_path, *extra):
        return ["congest", "--scaled", "8", "4", "4", "--seed", "0",
                "--k", "10,60", "--horizon-us", "150",
                "--out", str(tmp_path), *extra]

    def test_congest_runs_then_resumes(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "Victim tail vs backpressure" in out
        assert "fifo" in out and "ecn k10" in out and "ecn k60" in out
        assert "FIFO victim p99" in out
        assert "(written)" in out
        artifacts = list(tmp_path.glob("congest-*.json"))
        assert len(artifacts) == 1
        assert main(self.args(tmp_path)) == 0
        assert "(resumed)" in capsys.readouterr().out

    def test_fresh_reruns_identically(self, tmp_path, capsys):
        assert main(self.args(tmp_path, "--json")) == 0
        first = capsys.readouterr().out
        assert main(self.args(tmp_path, "--json", "--fresh")) == 0
        assert capsys.readouterr().out == first
        assert json.loads(first)["status"] == "ok"

    def test_knobs_change_the_artifact(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        assert main(self.args(tmp_path, "--fanin", "4", "--no-fifo")) == 0
        assert len(list(tmp_path.glob("congest-*.json"))) == 2

    def test_validate_passes_and_prints_ratio(self, capsys):
        assert main(["congest", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "Timeflow cross-validation" in out
        assert "validation PASSED" in out


class TestCompareVerb:
    """python -m repro compare (see repro.core.compare)."""

    def test_compare_prints_all_sections(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "Machine families" in out
        assert "Table 6" in out and "Table 7" in out
        assert "HPL/HPCG roofline projection" in out
        for fam in ("frontier", "summit", "aurora"):
            assert fam in out
        assert "within ±10%: True" in out

    def test_frontier_column_bit_identical_to_apps(self, capsys):
        """The compare table's Frontier cells must render exactly the
        strings the ``apps`` verb prints (same model, same format)."""
        assert main(["apps"]) == 0
        apps_out = capsys.readouterr().out
        apps_cells = {}
        for line in apps_out.splitlines():
            parts = [p.strip() for p in line.split("|")]
            if len(parts) == 4 and parts[3].endswith("x"):
                apps_cells[parts[0]] = parts[3]
        assert len(apps_cells) == 11
        assert main(["compare"]) == 0
        compare_out = capsys.readouterr().out
        for line in compare_out.splitlines():
            parts = [p.strip() for p in line.split("|")]
            if len(parts) == 6 and parts[0] in apps_cells:
                assert parts[3] == apps_cells.pop(parts[0])
        assert apps_cells == {}    # every app row was found and matched

    def test_json_document(self, capsys):
        assert main(["compare", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["frontier_hpl_within_10pct"] is True
        assert [p["family"] for p in doc["projection"]] == \
            ["frontier", "summit", "aurora"]
        assert all(p["binding"] == "compute" for p in doc["projection"])

    def test_families_subset(self, capsys):
        assert main(["compare", "--families", "aurora,summit",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [f["family"] for f in doc["families"]] == ["aurora", "summit"]
        assert "frontier_hpl_within_10pct" not in doc

    def test_unknown_family_is_a_usage_error(self, capsys):
        assert main(["compare", "--families", "elcap"]) == 2
        assert "elcap" in capsys.readouterr().err


class TestSweepGc:
    """python -m repro sweep --gc (see repro.sweep.artifacts)."""

    def test_gc_prunes_errors_and_reports_counts(self, tmp_path, capsys):
        assert main(["sweep", "--probe", "failing", "--workers", "0",
                     "--retries", "0", "--backoff", "0",
                     "--out", str(tmp_path)]) == 1
        assert main(["sweep", "--probe", "storage", "--workers", "0",
                     "--backoff", "0", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["sweep", "--gc", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed: 1" in out and "errors: 1" in out
        assert "kept: 1" in out
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_gc_on_missing_directory(self, tmp_path, capsys):
        assert main(["sweep", "--gc", "--out", str(tmp_path / "never")]) == 0
        assert "scanned: 0" in capsys.readouterr().out


class TestServeQueryVerbs:
    """python -m repro serve / query (see repro.serve)."""

    def teardown_method(self):
        from repro import obs
        obs.disable()
        obs.reset()

    @staticmethod
    def query_args(tmp_path, *extra):
        return ["query", "--local", "--probe", "storage",
                "--scaled", "6", "4", "4", *extra]

    def test_query_local_cold_path(self, tmp_path, capsys):
        assert main(self.query_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "ok: 1/1" in out

    def test_query_local_json_documents(self, tmp_path, capsys):
        assert main(self.query_args(tmp_path, "--count", "2", "--distinct",
                                    "--json")) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        docs = [json.loads(line) for line in lines[:-1]]
        assert len(docs) == 2
        assert all(doc["status"] == "ok" for doc in docs)
        assert docs[0]["task_id"] != docs[1]["task_id"]
        assert "ok: 2/2" in lines[-1]

    def test_query_spec_and_family_conflict(self, tmp_path, capsys):
        assert main(["query", "--local", "--spec", "x.json",
                     "--family", "summit"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_query_unknown_family_is_a_usage_error(self, capsys):
        assert main(["query", "--local", "--family", "nope"]) == 2
        assert "unknown machine family" in capsys.readouterr().err

    def test_query_unreachable_service_is_a_usage_error(self, capsys):
        assert main(["query", "--host", "127.0.0.1", "--port", "1",
                     "--probe", "storage"]) == 2
        assert "query:" in capsys.readouterr().err

    def test_serve_stdio_end_to_end(self, tmp_path, capsys, monkeypatch):
        """The README's curl-free example: request lines in, answers out."""
        import os
        import sys as _sys
        lines = (
            '{"id":"r1","probe":"storage","scaled":[6,4,4]}\n'
            '{"id":"r2","probe":"storage","scaled":[6,4,4],"seed":1}\n'
            '{"id":"r1b","probe":"storage","scaled":[6,4,4]}\n')
        read_fd, write_fd = os.pipe()
        os.write(write_fd, lines.encode())
        os.close(write_fd)
        stdin = os.fdopen(read_fd)
        monkeypatch.setattr(_sys, "stdin", stdin)
        assert main(["serve", "--stdio", "--out", str(tmp_path),
                     "--batch-window-ms", "5"]) == 0
        captured = capsys.readouterr()
        docs = [json.loads(line)
                for line in captured.out.strip().splitlines()]
        by_id = {doc["id"]: doc for doc in docs}
        assert set(by_id) == {"r1", "r2", "r1b"}
        assert all(doc["status"] == "ok" for doc in docs)
        # r1 and r1b are the identical task: one evaluation, shared answer
        assert by_id["r1"]["task_id"] == by_id["r1b"]["task_id"]
        assert "answered 3 request(s)" in captured.err
        # misses were written back to the shared sweep ledger
        assert len(list(tmp_path.glob("*.json"))) == 2


class TestVerbDocumentation:
    """Every registered verb must be documented (the tables drift
    otherwise: this is the sync contract named in ``repro.__main__``)."""

    @staticmethod
    def registered_verbs() -> set:
        subparsers = build_parser()._subparsers._group_actions[0]
        return set(subparsers.choices)

    def test_parser_covers_the_command_registry(self):
        assert set(COMMANDS) <= self.registered_verbs()

    def test_every_verb_in_module_docstring(self):
        import repro.__main__ as cli
        missing = [v for v in self.registered_verbs()
                   if f"``{v}``" not in cli.__doc__]
        assert missing == []

    def test_every_sweep_axis_in_help(self):
        """The --axis help string must name every registered axis."""
        from repro.sweep.plan import AXES
        subparsers = build_parser()._subparsers._group_actions[0]
        sweep = subparsers.choices["sweep"]
        help_text = sweep.format_help()
        missing = [axis for axis in AXES if axis not in help_text]
        assert missing == []

    def test_every_verb_in_readme(self):
        readme = (Path(__file__).resolve().parents[1] / "README.md")
        text = readme.read_text()
        documented = set()
        for match in re.finditer(r"python -m repro\s+(\{[^}]*\}|[a-z_]+)",
                                 text):
            token = match.group(1)
            if token.startswith("{"):
                documented.update(
                    v.strip() for v in token[1:-1].replace("\n", "")
                    .split(","))
            else:
                documented.add(token)
        missing = self.registered_verbs() - documented
        assert missing == set()
