"""CLI tests (python -m repro)."""

import json

import pytest

from repro.__main__ import COMMANDS, main


class TestCommands:
    @pytest.mark.parametrize("command", ["specs", "storage", "stream",
                                         "apps", "scorecard", "software"])
    def test_command_runs_and_prints(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert len(out) > 100

    def test_specs_content(self, capsys):
        main(["specs"])
        out = capsys.readouterr().out
        assert "9472" in out
        assert "2.0 EF" in out
        assert "270.1" in out

    def test_apps_content(self, capsys):
        main(["apps"])
        out = capsys.readouterr().out
        for name in ("CoMet", "Cholla", "WarpX", "ExaSMR"):
            assert name in out

    def test_scorecard_content(self, capsys):
        main(["scorecard"])
        out = capsys.readouterr().out
        assert "pass" in out and "struggle" in out
        assert "True" in out   # meets the spirit of exascale

    def test_gpcnet_content(self, capsys):
        main(["gpcnet"])
        out = capsys.readouterr().out
        assert "Isolated" in out and "Congested" in out
        assert "Allreduce" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_registry_matches_doc(self):
        assert set(COMMANDS) == {"specs", "storage", "stream", "gpcnet",
                                 "apps", "scorecard", "software",
                                 "evaluate"}


class TestEvaluateJson:
    def test_emits_valid_json(self, capsys):
        main(["evaluate"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["meets_spirit_of_exascale"] is True
        assert len(payload["table6"]) == 6
        assert len(payload["table7"]) == 5
