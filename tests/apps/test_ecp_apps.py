"""Table 7 — ECP application KPP tests."""

import pytest

from repro.apps import ECP_APPS
from repro.apps.exaalt import Exaalt
from repro.apps.exasky import ExaSky
from repro.apps.warpx import WarpX
from repro.apps.wdmapp import WdmApp
from repro.core.baselines import CORI, MIRA, THETA, TITAN

#: Table 7 of the paper: application -> (baseline, achieved speedup).
TABLE7 = {
    "WarpX (vs Warp)": ("Cori", 500.0),
    "ExaSky": ("Theta", 234.0),
    "EXAALT": ("Mira", 398.5),
    "ExaSMR": ("Titan", 70.0),
    "WDMApp": ("Titan", 150.0),
}


class TestTable7:
    def test_all_five_apps_present_in_order(self):
        assert [a.name for a in ECP_APPS()] == list(TABLE7)

    @pytest.mark.parametrize("app_name,row", TABLE7.items())
    def test_achieved_and_baseline_match_paper(self, app_name, row):
        baseline_name, achieved = row
        app = next(a for a in ECP_APPS() if a.name == app_name)
        assert app.baseline_machine.name == baseline_name
        assert app.speedup() == pytest.approx(achieved, rel=0.02)

    def test_every_app_exceeds_the_50x_kpp(self):
        for app in ECP_APPS():
            result = app.kpp_result()
            assert result.target == 50.0
            assert result.met

    def test_baselines_are_the_20pf_generation(self):
        machines = {a.baseline_machine for a in ECP_APPS()}
        assert machines == {CORI, THETA, MIRA, TITAN}
        for m in machines:
            # "the reigning DOE systems were in the ~20 PF range"
            assert m.system_fp64 < 35e15


class TestPerAppDetails:
    def test_warpx_was_first_to_kpp_with_500x(self):
        # "WarpX was the first application in ECP to achieve the KPP goal"
        proj = WarpX().projection()
        assert proj.speedup == pytest.approx(500.0, rel=0.02)
        assert "algorithmic_rewrite" in proj.factors

    def test_warpx_weak_scaling_near_ideal(self):
        points = WarpX().weak_scaling_model()
        assert all(eff > 0.9 for _, eff in points)
        # efficiency decays only slightly over orders of magnitude
        assert points[0][1] - points[-1][1] < 0.05

    def test_exasky_weak_scaling_consistency(self):
        # "consistent timings between the 4096-8192 node Frontier runs"
        c = ExaSky().weak_scaling_consistency()
        assert c["timing_ratio_8k_vs_4k"] == pytest.approx(1.0, abs=0.05)

    def test_exaalt_25x_kernel_rewrite_factor(self):
        proj = Exaalt().projection()
        assert proj.factors["snap_kernel_rewrite"] == 25.0

    def test_exaalt_paper_rates(self):
        rates = Exaalt().paper_rates()
        # "13,856 instances of LAMMPS executing simultaneously"
        assert rates["lammps_instances"] == 13856.0
        assert rates["frontier_atom_steps_per_s"] == 3.57e9

    def test_wdmapp_projection(self):
        assert WdmApp().speedup() == pytest.approx(150.0, rel=0.02)

    def test_kernels_run_for_every_ecp_app(self):
        for app in ECP_APPS():
            metrics = app.run_kernel(scale=0.25)
            assert metrics["fom"] > 0

    def test_warpx_kernel_conserves_fdtd_energy(self):
        metrics = WarpX().run_kernel(scale=0.3)
        assert metrics["fdtd_energy_ratio"] == pytest.approx(1.0, abs=0.1)


class TestWarpXMeshRefinement:
    def test_amr_wins_accuracy_per_cell_conservatively(self):
        """The Gordon-Bell feature: mesh refinement cuts the error using a
        fraction of the cells, with the composite integral conserved."""
        from repro.apps.warpx import WarpX
        result = WarpX().mesh_refinement_check()
        assert result["error_ratio"] < 0.85
        assert result["refined_fraction"] < 0.6
        assert result["mass_drift"] < 1e-12
