"""Monte-Carlo neutronics kernel tests."""

import pytest

from repro.apps.kernels.montecarlo import SlabReactor, measure_fom
from repro.errors import ConfigurationError


class TestKEigenvalue:
    def test_k_inf_analytic(self):
        r = SlabReactor(sigma_t=1.0, sigma_s=0.7, sigma_f=0.12, nu=2.5)
        # k_inf = nu Sigma_f / Sigma_a = 2.5*0.12/0.3 = 1.0
        assert r.k_infinity == pytest.approx(1.0)

    def test_thick_slab_approaches_k_inf(self):
        # leakage vanishes as the slab thickens
        r = SlabReactor(thickness=200.0)
        result = r.power_iteration(histories=3000, generations=16, discard=6,
                                   rng=1)
        assert result.k_eff == pytest.approx(r.k_infinity, abs=0.05)

    def test_thin_slab_leaks_and_k_drops(self):
        thin = SlabReactor(thickness=2.0).power_iteration(
            histories=3000, generations=12, discard=4, rng=1)
        thick = SlabReactor(thickness=50.0).power_iteration(
            histories=3000, generations=12, discard=4, rng=1)
        assert thin.k_eff < thick.k_eff

    def test_more_fissile_material_raises_k(self):
        lean = SlabReactor(sigma_s=0.75, sigma_f=0.08).power_iteration(
            histories=2000, generations=10, discard=4, rng=2)
        rich = SlabReactor(sigma_s=0.65, sigma_f=0.20).power_iteration(
            histories=2000, generations=10, discard=4, rng=2)
        assert rich.k_eff > lean.k_eff


class TestTallies:
    def test_fission_source_symmetric(self):
        r = SlabReactor(thickness=20.0, n_tally_bins=10)
        result = r.power_iteration(histories=4000, generations=14, discard=6,
                                   rng=3)
        t = result.fission_tally
        asym = abs(t[:5].sum() - t[5:].sum()) / t.sum()
        assert asym < 0.1

    def test_fission_peaks_at_center(self):
        r = SlabReactor(thickness=20.0, n_tally_bins=10)
        result = r.power_iteration(histories=4000, generations=14, discard=6,
                                   rng=3)
        t = result.fission_tally
        center = t[4:6].mean()
        edges = (t[0] + t[-1]) / 2
        assert center > 1.5 * edges

    def test_history_accounting(self):
        r = SlabReactor()
        result = r.power_iteration(histories=500, generations=8, discard=3,
                                   rng=4)
        assert result.total_histories == 500 * 8
        assert result.histories_per_second > 0


class TestValidation:
    def test_cross_sections_consistent(self):
        with pytest.raises(ConfigurationError):
            SlabReactor(sigma_t=1.0, sigma_s=0.8, sigma_f=0.3)

    def test_positive_thickness(self):
        with pytest.raises(ConfigurationError):
            SlabReactor(thickness=0.0)

    def test_iteration_parameters(self):
        r = SlabReactor()
        with pytest.raises(ConfigurationError):
            r.power_iteration(histories=5)
        with pytest.raises(ConfigurationError):
            r.power_iteration(histories=100, generations=4, discard=4)

    def test_deterministic_given_seed(self):
        a = SlabReactor().power_iteration(histories=500, generations=8,
                                          discard=3, rng=5)
        b = SlabReactor().power_iteration(histories=500, generations=8,
                                          discard=3, rng=5)
        assert a.k_eff == b.k_eff

    def test_fom(self):
        r = measure_fom(histories=500, generations=8)
        assert r["fom"] > 0
        assert 0.5 < r["k_eff"] < 1.2
