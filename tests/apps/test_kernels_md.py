"""Lennard-Jones MD kernel tests."""

import numpy as np
import pytest

from repro.apps.kernels.md import LennardJonesMd, make_fcc_lattice, measure_fom
from repro.errors import ConfigurationError


def make_sim(cells: int = 2, **kw) -> LennardJonesMd:
    pos, box = make_fcc_lattice(cells)
    kw.setdefault("cutoff", min(2.5, 0.49 * box))
    return LennardJonesMd(pos, box, **kw)


class TestLattice:
    def test_fcc_atom_count(self):
        pos, _ = make_fcc_lattice(3)
        assert pos.shape == (108, 3)

    def test_density(self):
        pos, box = make_fcc_lattice(2, density=0.8442)
        assert pos.shape[0] / box ** 3 == pytest.approx(0.8442)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_fcc_lattice(0)


class TestConservation:
    def test_energy_conserved_nve(self):
        sim = make_sim(2, dt=0.002)
        e0 = sim.total_energy()
        sim.run(100)
        drift = abs(sim.total_energy() - e0) / abs(e0)
        assert drift < 1e-3

    def test_momentum_zero_and_conserved(self):
        sim = make_sim(2)
        assert np.linalg.norm(sim.total_momentum()) < 1e-12
        sim.run(50)
        assert np.linalg.norm(sim.total_momentum()) < 1e-10

    def test_smaller_dt_conserves_better(self):
        drifts = []
        for dt in (0.008, 0.002):
            sim = make_sim(2, dt=dt)
            e0 = sim.total_energy()
            sim.run(50)
            drifts.append(abs(sim.total_energy() - e0) / abs(e0))
        assert drifts[1] < drifts[0]


class TestPhysics:
    def test_fcc_ground_state_is_bound(self):
        sim = make_sim(2, temperature=1e-6)
        assert sim.potential_energy() < 0

    def test_temperature_definition(self):
        sim = make_sim(2, temperature=0.5)
        assert sim.temperature() == pytest.approx(
            2 * sim.kinetic_energy() / (3 * sim.n_atoms))

    def test_atoms_stay_in_box(self):
        sim = make_sim(2)
        sim.run(50)
        assert np.all(sim.x >= 0)
        assert np.all(sim.x < sim.box)

    def test_forces_are_pairwise_antisymmetric(self):
        sim = make_sim(2)
        f = sim._forces()
        assert np.linalg.norm(f.sum(axis=0)) < 1e-9


class TestValidationAndFom:
    def test_cutoff_bounds(self):
        pos, box = make_fcc_lattice(2)
        with pytest.raises(ConfigurationError):
            LennardJonesMd(pos, box, cutoff=box)
        with pytest.raises(ConfigurationError):
            LennardJonesMd(pos.ravel(), box)  # wrong shape

    def test_fom(self):
        r = measure_fom(cells=2, n_steps=5)
        assert r["fom"] > 0
        assert r["energy_drift"] < 1e-3
