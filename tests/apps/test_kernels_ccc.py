"""CoMet CCC kernel tests."""

import numpy as np
import pytest

from repro.apps.kernels.ccc import (FLOPS_PER_COMPARISON, ccc_2way, ccc_3way,
                                    comparisons_2way, make_genotype_matrix,
                                    measure_fom)
from repro.errors import ConfigurationError


class TestGenotypes:
    def test_values_are_2bit_counts(self):
        g = make_genotype_matrix(32, 100, rng=1)
        assert g.min() >= 0 and g.max() <= 2
        assert g.shape == (32, 100)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_genotype_matrix(1, 100)


class Test2Way:
    def test_cells_normalise_to_one(self):
        g = make_genotype_matrix(16, 64, rng=2)
        table = ccc_2way(g)
        sums = table.sum(axis=(2, 3))
        assert np.allclose(sums, 1.0)

    def test_symmetry(self):
        # table[i,j,a,b] == table[j,i,b,a]
        g = make_genotype_matrix(12, 50, rng=3)
        t = ccc_2way(g)
        assert np.allclose(t, np.transpose(t, (1, 0, 3, 2)))

    def test_identical_loci_maximise_diagonal_mass(self):
        g = np.zeros((2, 40), dtype=np.int8)
        g[0, :20] = 2
        g[1, :20] = 2
        t = ccc_2way(g)
        # locus 0 vs locus 1 co-occurrence is concentrated at (low,low)
        # and (high,high); anti-diagonal mass equals diagonal for half-split
        assert t[0, 1, 0, 0] + t[0, 1, 1, 1] >= t[0, 1, 0, 1] + t[0, 1, 1, 0]

    def test_matches_bruteforce(self):
        g = make_genotype_matrix(6, 30, rng=4)
        t = ccc_2way(g)
        low = 2.0 - g
        high = g.astype(float)
        planes = (low, high)
        for i in range(6):
            for j in range(6):
                for a in range(2):
                    for b in range(2):
                        expect = float(planes[a][i] @ planes[b][j]) / (4 * 30)
                        assert t[i, j, a, b] == pytest.approx(expect)


class Test3Way:
    def test_shape_capped(self):
        g = make_genotype_matrix(40, 32, rng=5)
        t = ccc_3way(g, max_loci=8)
        assert t.shape == (8, 8, 8, 2, 2, 2)

    def test_cells_normalise_to_one(self):
        g = make_genotype_matrix(8, 32, rng=6)
        t = ccc_3way(g)
        assert np.allclose(t.sum(axis=(3, 4, 5)), 1.0)

    def test_marginal_consistency_with_2way(self):
        # Summing the 3-way table over the third locus's states recovers a
        # scaled 2-way table.
        g = make_genotype_matrix(6, 40, rng=7)
        t3 = ccc_3way(g)
        t2 = ccc_2way(g)
        # marginal over locus k and state c: average over k gives 2-way
        marg = t3.sum(axis=5).mean(axis=2)     # (i, j, a, b)
        assert np.allclose(marg * 2.0, t2[:6, :6] * 2.0, atol=1e-12)


class TestFom:
    def test_flops_per_comparison_constant(self):
        # 6.71 EF mixed precision at 419.9e15 comparisons/s ~ 16 flops each
        assert FLOPS_PER_COMPARISON == pytest.approx(15.98, abs=0.02)

    def test_comparison_counting(self):
        assert comparisons_2way(10, 100) == 10 * 10 * 100

    def test_measure(self):
        r = measure_fom(32, 128)
        assert r["fom"] > 0
        assert r["normalisation_error"] < 1e-12
