"""HPCG-style preconditioned CG kernel tests."""

import numpy as np
import pytest

from repro.apps.kernels.cg import (hpcg_arithmetic_intensity, measure_fom,
                                   pcg_solve, poisson_operator)
from repro.errors import ConfigurationError
from repro.node.roofline import GcdRoofline


class TestOperator:
    def test_poisson_3d_stencil(self):
        a = poisson_operator(5, dims=3)
        assert a.shape == (125, 125)
        assert a.diagonal().min() == a.diagonal().max() == 6.0

    def test_poisson_2d_stencil(self):
        a = poisson_operator(5, dims=2)
        assert a.diagonal().max() == 4.0

    def test_symmetric(self):
        a = poisson_operator(6, dims=3)
        assert (a - a.T).nnz == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_operator(2)
        with pytest.raises(ConfigurationError):
            poisson_operator(8, dims=4)


class TestSolver:
    @pytest.fixture(scope="class")
    def problem(self):
        a = poisson_operator(10, dims=3)
        rng = np.random.default_rng(5)
        x_true = rng.standard_normal(a.shape[0])
        return a, x_true, a @ x_true

    def test_converges_to_solution(self, problem):
        a, x_true, b = problem
        x, result = pcg_solve(a, b, tol=1e-10)
        assert result.converged
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-8

    def test_preconditioner_cuts_iterations(self, problem):
        a, _, b = problem
        _, plain = pcg_solve(a, b, preconditioned=False)
        _, pre = pcg_solve(a, b, preconditioned=True)
        assert pre.iterations < plain.iterations
        assert pre.converged and plain.converged

    def test_residual_definition(self, problem):
        a, _, b = problem
        x, result = pcg_solve(a, b, tol=1e-8)
        assert (np.linalg.norm(b - a @ x) / np.linalg.norm(b)
                == pytest.approx(result.residual, rel=1e-6))

    def test_zero_rhs(self, problem):
        a, _, _ = problem
        x, result = pcg_solve(a, np.zeros(a.shape[0]))
        assert result.converged
        assert np.all(x == 0)

    def test_flop_accounting_positive(self, problem):
        a, _, b = problem
        _, result = pcg_solve(a, b)
        # at least one SpMV per iteration
        assert result.flops >= result.iterations * 2 * a.nnz

    def test_shape_mismatch_rejected(self, problem):
        a, _, _ = problem
        with pytest.raises(ConfigurationError):
            pcg_solve(a, np.ones(3))


class TestMemoryBoundClaim:
    def test_hpcg_intensity_far_below_ridge(self):
        # The quantitative version of "HPCG is memory bound": its AI sits
        # two orders of magnitude under the GCD ridge point.
        a = poisson_operator(12, dims=3)
        ai = hpcg_arithmetic_intensity(a)
        roof = GcdRoofline()
        assert ai < roof.ridge_point / 50
        assert roof.is_memory_bound(ai)

    def test_fom_measurement(self):
        r = measure_fom(n=10)
        assert r["fom"] > 0
        assert r["solution_error"] < 1e-6
        assert r["arithmetic_intensity"] < 0.3
