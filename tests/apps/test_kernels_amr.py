"""Block-structured AMR kernel tests (AMReX/Parthenon machinery)."""

import numpy as np
import pytest

from repro.apps.kernels.amr import AmrHierarchy, advect_exact
from repro.errors import ConfigurationError


class TestRefinementMachinery:
    def test_pulse_region_gets_refined(self):
        h = AmrHierarchy(n_coarse=64)
        assert 0 < len(h.fine) < h.n_blocks
        # the refined blocks cover the pulse at x ~ 0.3
        pulse_block = int(0.3 * h.n_blocks)
        assert any(abs(b - pulse_block) <= 1 for b in h.fine)

    def test_prolongation_is_conservative(self):
        h = AmrHierarchy(n_coarse=32)
        for b in range(h.n_blocks):
            fine = h.prolong(b)
            coarse = h.coarse[h._block_slice(b)]
            assert np.allclose(0.5 * (fine[0::2] + fine[1::2]), coarse)

    def test_restriction_inverts_prolongation_mean(self):
        h = AmrHierarchy(n_coarse=32)
        b = next(iter(h.fine))
        before = h.coarse[h._block_slice(b)].copy()
        h.restrict(b)
        assert np.allclose(h.coarse[h._block_slice(b)], before)

    def test_regrid_tracks_the_moving_pulse(self):
        h = AmrHierarchy(n_coarse=64)
        initial_blocks = set(h.fine)
        h.run(0.45)   # pulse moves nearly half the domain
        assert set(h.fine) != initial_blocks
        assert h.fine   # still refining something


class TestConservation:
    def test_composite_mass_exact_without_regrid(self):
        h = AmrHierarchy(n_coarse=64)
        m0 = h.total_mass()
        for _ in range(50):
            h.step()
        assert h.total_mass() == pytest.approx(m0, abs=1e-13)

    def test_composite_mass_exact_through_regrids(self):
        h = AmrHierarchy(n_coarse=64)
        m0 = h.total_mass()
        h.run(0.5, regrid_every=3)
        assert h.total_mass() == pytest.approx(m0, abs=1e-12)

    def test_mass_matches_uniform_run(self):
        # AMR and no-AMR runs conserve the same integral.
        amr = AmrHierarchy(n_coarse=64)
        uniform = AmrHierarchy(n_coarse=64, refine_threshold=1e9)
        assert amr.total_mass() == pytest.approx(uniform.total_mass(),
                                                 rel=1e-12)


class TestAccuracy:
    def test_refinement_reduces_error(self):
        amr = AmrHierarchy(n_coarse=64)
        uniform = AmrHierarchy(n_coarse=64, refine_threshold=1e9)
        amr.run(0.25)
        uniform.run(0.25)
        assert amr.composite_error() < 0.85 * uniform.composite_error()
        assert amr.refined_fraction < 0.6   # and it did so cheaply

    def test_amr_approaches_fully_fine_quality(self):
        amr = AmrHierarchy(n_coarse=64)
        fine_everywhere = AmrHierarchy(n_coarse=128, refine_threshold=1e9)
        amr.run(0.25)
        fine_everywhere.run(0.25)
        assert amr.composite_error() < 1.6 * fine_everywhere.composite_error()

    def test_exact_solution_is_periodic(self):
        x = np.linspace(0, 1, 50, endpoint=False)
        assert np.allclose(advect_exact(x, 0.0), advect_exact(x, 1.0))


class TestValidation:
    def test_blocks_must_tile(self):
        with pytest.raises(ConfigurationError):
            AmrHierarchy(n_coarse=60, block_size=8)

    def test_cfl_bounds(self):
        with pytest.raises(ConfigurationError):
            AmrHierarchy(cfl=0.0)
