"""ParSplice trajectory-splicing tests (EXAALT's core algorithm)."""

import pytest

from repro.apps.exaalt import ParSpliceEngine, Segment
from repro.errors import ConfigurationError


class TestSegments:
    def test_segment_validation(self):
        with pytest.raises(ConfigurationError):
            Segment(start_state=0, end_state=1, duration=0.0, replica=0)


class TestSplicingCorrectness:
    def test_trajectory_is_contiguous(self):
        # The fundamental splicing invariant: every appended segment starts
        # exactly where the previous one ended.
        engine = ParSpliceEngine(n_replicas=8, rng=1)
        engine.run(rounds=50)
        assert engine.is_contiguous()
        assert len(engine.trajectory) > 0

    def test_simulated_time_accumulates(self):
        engine = ParSpliceEngine(n_replicas=4, rng=2)
        engine.run(rounds=30)
        assert engine.simulated_time() == pytest.approx(
            len(engine.trajectory) * engine.segment_length)

    def test_more_replicas_more_throughput(self):
        # Time-wise parallelism: replica count converts into simulated
        # time per wall-clock segment — the whole point of ParSplice.
        small = ParSpliceEngine(n_replicas=2, rng=3)
        small.run(rounds=60)
        large = ParSpliceEngine(n_replicas=32, rng=3)
        large.run(rounds=60)
        assert large.speedup() > 2 * small.speedup()

    def test_speedup_bounded_by_replicas(self):
        engine = ParSpliceEngine(n_replicas=16, rng=4)
        engine.run(rounds=40)
        assert engine.speedup() <= 16.0 + 1e-9

    def test_metastability_helps_prediction(self):
        # With a strong self-loop, speculation is usually right and the
        # splicer consumes most produced segments.
        sticky = ParSpliceEngine(n_replicas=8, self_loop=0.9, rng=5)
        sticky.run(rounds=50)
        consumed = len(sticky.trajectory) / sticky.wall_segments
        assert consumed > 0.5


class TestValidation:
    def test_config_checks(self):
        with pytest.raises(ConfigurationError):
            ParSpliceEngine(n_states=1)
        with pytest.raises(ConfigurationError):
            ParSpliceEngine(n_replicas=0)
        with pytest.raises(ConfigurationError):
            ParSpliceEngine(self_loop=1.0)

    def test_deterministic_given_seed(self):
        a = ParSpliceEngine(n_replicas=4, rng=7)
        a.run(20)
        b = ParSpliceEngine(n_replicas=4, rng=7)
        b.run(20)
        assert a.simulated_time() == b.simulated_time()
