"""Pseudo-spectral Navier-Stokes kernel tests."""

import numpy as np
import pytest

from repro.apps.kernels.spectral import (SpectralNavierStokes3d, measure_fom,
                                         transpose_bytes_per_step)
from repro.errors import ConfigurationError


@pytest.fixture()
def sim() -> SpectralNavierStokes3d:
    s = SpectralNavierStokes3d(n=16, viscosity=0.05, dt=0.01)
    s.set_taylor_green()
    return s


class TestIncompressibility:
    def test_initial_field_divergence_free(self, sim):
        assert sim.divergence_max() < 1e-12

    def test_divergence_free_maintained(self, sim):
        for _ in range(10):
            sim.step()
        assert sim.divergence_max() < 1e-10


class TestEnergyBudget:
    def test_viscous_decay_matches_taylor_green(self):
        # Early Taylor-Green decay: dE/dt = -2 nu Z with Z the enstrophy;
        # for TG at t=0: E = A^2/8 and the decay rate is exp(-2 nu k^2 t)
        # with k^2 = 3 for the (1,1,1) mode.
        nu = 0.05
        sim = SpectralNavierStokes3d(n=16, viscosity=nu, dt=0.005)
        sim.set_taylor_green(amplitude=0.01)   # small: nonlinearity negligible
        e0 = sim.kinetic_energy()
        n_steps = 20
        for _ in range(n_steps):
            sim.step()
        expected = e0 * np.exp(-2 * nu * 3.0 * sim.time)
        assert sim.kinetic_energy() == pytest.approx(expected, rel=0.01)

    def test_energy_never_grows(self, sim):
        e_prev = sim.kinetic_energy()
        for _ in range(10):
            sim.step()
            e = sim.kinetic_energy()
            assert e <= e_prev * (1 + 1e-10)
            e_prev = e

    def test_taylor_green_initial_energy(self):
        sim = SpectralNavierStokes3d(n=16)
        sim.set_taylor_green(amplitude=1.0)
        # E = (1/2)<u^2> = 1/8 for the TG field with A=1
        assert sim.kinetic_energy() == pytest.approx(0.125, rel=1e-6)


class TestDecompositionModel:
    def test_1d_moves_less_than_2d_per_rank(self):
        # one transpose vs two per FFT
        one = transpose_bytes_per_step(256, ranks=64, decomposition="1d")
        two = transpose_bytes_per_step(256, ranks=64, decomposition="2d")
        assert two == pytest.approx(2 * one)

    def test_volume_scales_inverse_with_ranks(self):
        a = transpose_bytes_per_step(256, ranks=64)
        b = transpose_bytes_per_step(256, ranks=128)
        assert a == pytest.approx(2 * b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            transpose_bytes_per_step(64, ranks=4, decomposition="3d")
        with pytest.raises(ConfigurationError):
            transpose_bytes_per_step(64, ranks=0)


class TestConfigAndFom:
    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            SpectralNavierStokes3d(n=7)
        with pytest.raises(ConfigurationError):
            SpectralNavierStokes3d(n=16, viscosity=0.0)

    def test_fom_measurement(self):
        r = measure_fom(n=16, n_steps=2)
        assert r["fom"] > 0
        assert r["divergence_max"] < 1e-10
        assert r["energy_ratio"] <= 1.0
