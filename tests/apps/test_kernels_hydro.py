"""Euler/HLLC hydro kernel physics tests."""

import numpy as np
import pytest

from repro.apps.kernels.hydro import (Euler1d, linear_wave_error,
                                      measure_cell_update_rate,
                                      sod_shock_tube)
from repro.errors import ConfigurationError


class TestConservation:
    def test_periodic_conservation_exact(self):
        sim = Euler1d(nx=128, boundary="periodic")
        x = (np.arange(128) + 0.5) * sim.dx
        sim.set_primitive(1.0 + 0.2 * np.sin(2 * np.pi * x),
                          0.1 * np.cos(2 * np.pi * x),
                          np.full(128, 1.0))
        before = sim.conserved_totals()
        for _ in range(50):
            sim.step()
        after = sim.conserved_totals()
        assert np.allclose(before, after, rtol=1e-12, atol=1e-12)

    def test_positivity_preserved_on_sod(self):
        d = sod_shock_tube(nx=128)
        assert d["rho_min"] > 0
        assert d["p_min"] > 0


class TestSodShockTube:
    def test_shock_position(self):
        d = sod_shock_tube(nx=512)
        # exact shock speed 1.7522; tolerance a few cells
        assert d["shock_position_error"] < 0.02

    def test_post_shock_velocity(self):
        # exact contact velocity is ~0.9274
        d = sod_shock_tube(nx=512)
        assert d["max_velocity"] == pytest.approx(0.9274, abs=0.03)


class TestLinearWave:
    def test_wave_returns_after_one_period(self):
        # error after one crossing is tiny relative to the amplitude
        err = linear_wave_error(128, amplitude=1e-4)
        assert err < 1e-5

    def test_convergence_with_resolution(self):
        e32 = linear_wave_error(32)
        e64 = linear_wave_error(64)
        e128 = linear_wave_error(128)
        # better than first order (MUSCL limiting + Euler time stepping
        # lands between first and second order on smooth waves)
        assert e32 / e64 > 1.8
        assert e64 / e128 > 1.8


class TestNumerics:
    def test_hllc_resolves_contact_better_than_diffusion(self):
        # After Sod, the density jump at the contact is preserved within
        # a handful of cells (HLLC restores the contact wave).
        sim = Euler1d(nx=400, boundary="outflow")
        x = (np.arange(400) + 0.5) * sim.dx
        rho = np.where(x < 0.5, 1.0, 0.125)
        p = np.where(x < 0.5, 1.0, 0.1)
        sim.set_primitive(rho, np.zeros(400), p)
        sim.run(0.2)
        rho_f, _, _ = sim.primitive()
        # intermediate density states ~0.426 and ~0.266 both present
        assert np.any(np.abs(rho_f - 0.426) < 0.03)
        assert np.any(np.abs(rho_f - 0.266) < 0.03)

    def test_cfl_respected(self):
        sim = Euler1d(nx=64, cfl=0.4)
        sim.set_primitive(np.ones(64), np.zeros(64), np.ones(64))
        dt = sim.step()
        c = np.sqrt(1.4)
        assert dt <= 0.4 * sim.dx / c * 1.0001

    def test_invalid_setups(self):
        with pytest.raises(ConfigurationError):
            Euler1d(nx=4)
        with pytest.raises(ConfigurationError):
            Euler1d(nx=16, boundary="wrap")
        sim = Euler1d(nx=16)
        with pytest.raises(ConfigurationError):
            sim.set_primitive(np.zeros(16), np.zeros(16), np.ones(16))


class TestFom:
    def test_cell_update_rate_and_conservation(self):
        m = measure_cell_update_rate(nx=512, n_steps=10)
        assert m["fom"] > 0
        assert m["mass_error"] < 1e-10
        assert m["energy_error"] < 1e-10
