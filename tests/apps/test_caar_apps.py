"""Table 6 — CAAR/INCITE application KPP tests."""

import pytest

from repro.apps import CAAR_APPS
from repro.apps.athenapk import AthenaPK
from repro.apps.cholla import Cholla
from repro.apps.comet import CoMet
from repro.apps.gests import Gests
from repro.apps.lsms import Lsms
from repro.apps.picongpu import PIConGPU
from repro.core.baselines import SUMMIT

#: Table 6 of the paper: application -> achieved speedup over Summit.
TABLE6 = {
    "CoMet": 5.2,
    "LSMS": 7.5,
    "PIConGPU": 4.7,
    "Cholla": 20.0,
    "GESTS": 5.9,
    "AthenaPK": 4.6,
}


class TestTable6:
    def test_all_six_apps_present_in_order(self):
        assert [a.name for a in CAAR_APPS()] == list(TABLE6)

    @pytest.mark.parametrize("app_name,achieved", TABLE6.items())
    def test_achieved_speedup_matches_paper(self, app_name, achieved):
        app = next(a for a in CAAR_APPS() if a.name == app_name)
        assert app.speedup() == pytest.approx(achieved, rel=0.02)

    def test_every_app_exceeds_the_4x_kpp(self):
        # "CAAR and INCITE applications that have exceeded their KPP of
        # 4.0x over Summit"
        for app in CAAR_APPS():
            result = app.kpp_result()
            assert result.target == 4.0
            assert result.met
            assert result.margin > 1.0

    def test_baseline_is_summit_for_all(self):
        for app in CAAR_APPS():
            assert app.baseline_machine is SUMMIT

    def test_cholla_has_the_largest_margin(self):
        # Cholla's 20x (4-5x algorithmic on top of hardware) leads Table 6.
        speedups = {a.name: a.speedup() for a in CAAR_APPS()}
        assert max(speedups, key=speedups.get) == "Cholla"


class TestPerAppDetails:
    def test_comet_mixed_precision_exaflops(self):
        rates = CoMet().paper_rates()
        # "The compute rate for this run reached 6.71 Exaflops mixed-precision"
        assert rates["mixed_precision_exaflops"] == pytest.approx(6.71,
                                                                  abs=0.02)
        assert rates["reported_speedup"] == pytest.approx(5.17, abs=0.02)

    def test_lsms_system_fom_ratios(self):
        lsms = Lsms()
        # 1.027e16 / 4.513e14 ~ 22.8x vs pre-CAAR
        assert lsms.system_fom_ratio() == pytest.approx(22.76, rel=0.01)
        assert lsms.system_fom_ratio(against_pre_caar=False) == pytest.approx(
            3.306, rel=0.01)

    def test_picongpu_text_ratio(self):
        rates = PIConGPU().paper_rates()
        # 65.7e12 / 14.7e12 = 4.47x ("a factor of 4.5x" in the text)
        assert rates["reported_speedup"] == pytest.approx(4.47, abs=0.03)

    def test_cholla_decomposition(self):
        proj = Cholla().projection()
        # 4-5x algorithmic, remainder hardware
        assert proj.factors["algorithmic"] == pytest.approx(4.5)
        hardware = proj.speedup / proj.factors["algorithmic"]
        assert 4.0 < hardware < 5.0

    def test_gests_2d_decomposition_slower(self):
        assert Gests("1d").speedup() == pytest.approx(5.87, rel=0.01)
        assert Gests("2d").speedup() == pytest.approx(5.06, rel=0.01)

    def test_gests_memory_requires_frontier(self):
        # N=32768^3 state exceeds Summit's entire HBM (4608 x 96 GiB).
        required = Gests().memory_required_bytes()
        summit_hbm = 4608 * 96 * 2 ** 30
        frontier_hbm = 9472 * 512 * 2 ** 30
        assert required > summit_hbm
        assert required < frontier_hbm

    def test_athenapk_efficiency_story(self):
        story = AthenaPK().nic_per_gpu_story()
        # Frontier has 4 NICs / 8 GCDs; Summit 1 effective rail / 6 GPUs.
        assert story["frontier_nics_per_gpu"] > story["summit_nics_per_gpu"]
        assert story["frontier_parallel_efficiency"] == 0.96

    def test_athenapk_wave_convergence(self):
        e1, e2 = AthenaPK().linear_wave_convergence()
        assert e1 / e2 > 1.8

    def test_kernels_run_for_every_caar_app(self):
        for app in CAAR_APPS():
            metrics = app.run_kernel(scale=0.25)
            assert metrics["fom"] > 0
