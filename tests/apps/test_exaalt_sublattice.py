"""Sub-Lattice ParSplice tests (the variant the Frontier runs used)."""

import pytest

from repro.apps.exaalt import SubLatticeParSplice
from repro.errors import ConfigurationError


class TestSubLattice:
    @pytest.fixture(scope="class")
    def engine(self):
        s = SubLatticeParSplice(n_domains=4, replicas_per_domain=8,
                                rounds=40, rng=3)
        s.run()
        return s

    def test_sync_only_on_transitions(self, engine):
        # "synchronization between domains is only needed when a
        # topological transition occurs and not at every timestep"
        assert engine.synchronisations < engine.traditional_synchronisations()

    def test_saving_tracks_metastability(self):
        sticky = SubLatticeParSplice(self_loop=0.95, rounds=30, rng=4)
        sticky.run()
        jumpy = SubLatticeParSplice(self_loop=0.3, rounds=30, rng=4)
        jumpy.run()
        assert sticky.synchronisation_saving() > jumpy.synchronisation_saving()

    def test_large_saving_at_default_metastability(self, engine):
        assert engine.synchronisation_saving() > 0.5

    def test_every_domain_trajectory_contiguous(self, engine):
        assert engine.all_trajectories_contiguous()

    def test_simulated_time_accumulates_over_domains(self, engine):
        assert engine.simulated_time() > 0
        per_domain = [e.simulated_time() for e in engine.domains]
        assert sum(per_domain) == pytest.approx(engine.simulated_time())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SubLatticeParSplice(n_domains=0)

    def test_deterministic(self):
        a = SubLatticeParSplice(rounds=15, rng=9)
        a.run()
        b = SubLatticeParSplice(rounds=15, rng=9)
        b.run()
        assert a.synchronisations == b.synchronisations
