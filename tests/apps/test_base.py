"""Application abstraction tests."""

import pytest

from repro.apps.base import FomProjection, KppResult
from repro.apps.projection import device_ratio, standard_projection
from repro.core.baselines import FRONTIER, SUMMIT, THETA
from repro.errors import ConfigurationError


class TestFomProjection:
    def test_speedup_is_product(self):
        p = FomProjection(factors={"a": 2.0, "b": 3.0, "c": 0.5})
        assert p.speedup == pytest.approx(3.0)

    def test_explained_string(self):
        p = FomProjection(factors={"device_ratio": 2.67, "kernel": 1.25})
        text = p.explained()
        assert "device_ratio" in text
        assert "x" in text

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(ConfigurationError):
            FomProjection(factors={"bad": 0.0})

    def test_empty_projection_is_unity(self):
        assert FomProjection().speedup == 1.0


class TestKppResult:
    def test_met_and_margin(self):
        r = KppResult("X", "Summit", target=4.0, achieved=5.2)
        assert r.met
        assert r.margin == pytest.approx(1.3)

    def test_miss(self):
        r = KppResult("X", "Summit", target=50.0, achieved=40.0)
        assert not r.met


class TestProjectionHelpers:
    def test_device_ratio_gpu_machines(self):
        # full Frontier vs full Summit: 75,776 GCDs / 27,648 V100s
        assert device_ratio(SUMMIT, FRONTIER) == pytest.approx(2.7407,
                                                               abs=0.001)

    def test_device_ratio_cpu_baseline_uses_nodes(self):
        assert device_ratio(THETA, FRONTIER) == pytest.approx(9472 / 4392)

    def test_device_ratio_partial_machines(self):
        assert device_ratio(SUMMIT, FRONTIER, baseline_nodes=4608,
                            target_nodes=9216) == pytest.approx(
            9216 * 8 / (4608 * 6))

    def test_standard_projection_composition(self):
        proj = standard_projection(SUMMIT, FRONTIER, per_device_kernel=1.5,
                                   algorithmic=2.0,
                                   baseline_efficiency=0.5,
                                   target_efficiency=1.0,
                                   extra={"bonus": 1.1})
        assert set(proj.factors) == {"device_ratio", "per_device_kernel",
                                     "algorithmic", "scaling_efficiency",
                                     "bonus"}
        assert proj.factors["scaling_efficiency"] == 2.0

    def test_standard_projection_validation(self):
        with pytest.raises(ConfigurationError):
            standard_projection(SUMMIT, FRONTIER, per_device_kernel=1.0,
                                target_efficiency=1.5)
        with pytest.raises(ConfigurationError):
            device_ratio(SUMMIT, FRONTIER, baseline_nodes=0)

    def test_describe_mentions_baseline(self):
        from repro.apps.cholla import Cholla
        text = Cholla().describe()
        assert "Summit" in text
        assert "4" in text   # the KPP target
