"""2-D Euler solver tests (Cholla/AthenaPK's real regime)."""

import numpy as np
import pytest

from repro.apps.kernels.hydro2d import (Euler2d, blast_symmetry_error,
                                        kelvin_helmholtz_growth)
from repro.errors import ConfigurationError


class TestConservation:
    def test_periodic_conservation_exact(self):
        sim = Euler2d(24, 24)
        x, y = sim.grid()
        sim.set_primitive(1.0 + 0.2 * np.sin(2 * np.pi * x),
                          0.1 * np.cos(2 * np.pi * y),
                          0.1 * np.sin(2 * np.pi * x),
                          np.ones_like(x))
        before = sim.conserved_totals()
        for _ in range(20):
            sim.step()
        after = sim.conserved_totals()
        assert np.allclose(before, after, rtol=1e-12, atol=1e-12)

    def test_uniform_state_is_exactly_preserved(self):
        sim = Euler2d(16, 16)
        x, _ = sim.grid()
        sim.set_primitive(np.ones_like(x), np.zeros_like(x),
                          np.zeros_like(x), np.ones_like(x))
        for _ in range(10):
            sim.step()
        rho, vx, vy, p = sim.primitive()
        assert np.allclose(rho, 1.0) and np.allclose(p, 1.0)
        assert np.allclose(vx, 0.0) and np.allclose(vy, 0.0)


class TestSymmetry:
    def test_blast_wave_fourfold_symmetric(self):
        # Strang splitting + symmetric initial data must stay symmetric.
        assert blast_symmetry_error(n=32, t_end=0.05) < 1e-11

    def test_xy_sweep_symmetry(self):
        """A problem varying only in x matches its transpose in y."""
        a = Euler2d(16, 16)
        x, y = a.grid()
        a.set_primitive(1.0 + 0.1 * np.sin(2 * np.pi * x),
                        np.zeros_like(x), np.zeros_like(x),
                        np.ones_like(x))
        b = Euler2d(16, 16)
        b.set_primitive(1.0 + 0.1 * np.sin(2 * np.pi * y),
                        np.zeros_like(x), np.zeros_like(x),
                        np.ones_like(x))
        for _ in range(8):
            a.step()
            b.step()
        assert np.allclose(a.primitive()[0], b.primitive()[0].T, atol=1e-12)


class TestKelvinHelmholtz:
    def test_shear_layer_is_unstable(self):
        # The classic Cholla demonstration: the seeded mode must grow by
        # orders of magnitude once the instability develops.
        result = kelvin_helmholtz_growth(n=48, t_end=1.6)
        assert result["growth"] > 5.0
        assert result["mass_error"] < 1e-11
        assert result["energy_error"] < 1e-11

    def test_unperturbed_shear_layer_stays_put(self):
        sim = Euler2d(32, 32)
        x, y = sim.grid()
        inner = np.abs(y - 0.5) < 0.25
        sim.set_primitive(np.where(inner, 2.0, 1.0),
                          np.where(inner, 0.5, -0.5),
                          np.zeros_like(x), np.full_like(x, 2.5))
        sim.run(0.5)
        _, _, vy, _ = sim.primitive()
        assert np.max(np.abs(vy)) < 1e-10   # no seed, no growth


class TestValidation:
    def test_grid_bounds(self):
        with pytest.raises(ConfigurationError):
            Euler2d(4, 16)
        with pytest.raises(ConfigurationError):
            Euler2d(16, 16, cfl=1.5)

    def test_positivity_required(self):
        sim = Euler2d(16, 16)
        x, _ = sim.grid()
        with pytest.raises(ConfigurationError):
            sim.set_primitive(np.zeros_like(x), np.zeros_like(x),
                              np.zeros_like(x), np.ones_like(x))

    def test_cfl_respected(self):
        sim = Euler2d(16, 16)
        x, _ = sim.grid()
        sim.set_primitive(np.ones_like(x), np.zeros_like(x),
                          np.zeros_like(x), np.ones_like(x))
        dt = sim.step()
        c = np.sqrt(1.4)
        assert dt <= 0.35 * sim.dx / c * 1.0001
