"""Particle-mesh gravity kernel tests."""

import numpy as np
import pytest

from repro.apps.kernels.pm import ParticleMesh3d, measure_fom
from repro.errors import ConfigurationError


class TestDeposit:
    def test_cic_conserves_mass(self):
        sim = ParticleMesh3d(n_grid=16, n_particles=500)
        assert sim.deposited_mass() == pytest.approx(sim.total_mass(),
                                                     rel=1e-12)

    def test_uniform_particles_give_flat_density(self, rng):
        sim = ParticleMesh3d(n_grid=8, n_particles=80_000, rng=rng)
        rho = sim.deposit()
        assert rho.std() / rho.mean() < 0.1


class TestForces:
    def test_newtons_third_law(self):
        # CIC-deposit + FFT-solve + CIC-gather is momentum conserving.
        sim = ParticleMesh3d(n_grid=16, n_particles=200)
        acc = sim.acceleration()
        total_force = (sim.mass[:, None] * acc).sum(axis=0)
        assert np.linalg.norm(total_force) < 1e-10

    def test_two_bodies_attract(self):
        sim = ParticleMesh3d(n_grid=32, n_particles=2)
        sim.x = np.array([[0.35, 0.5, 0.5], [0.65, 0.5, 0.5]])
        sim.mass = np.array([0.5, 0.5])
        acc = sim.acceleration()
        # each accelerates toward the other along x
        assert acc[0, 0] > 0
        assert acc[1, 0] < 0
        assert abs(acc[0, 1]) < abs(acc[0, 0]) * 0.1

    def test_momentum_conserved_over_steps(self):
        sim = ParticleMesh3d(n_grid=16, n_particles=300)
        p0 = sim.total_momentum()
        for _ in range(5):
            sim.step()
        assert np.linalg.norm(sim.total_momentum() - p0) < 1e-10

    def test_positions_stay_in_box(self):
        sim = ParticleMesh3d(n_grid=16, n_particles=300, dt=5e-3)
        for _ in range(5):
            sim.step()
        assert np.all(sim.x >= 0.0)
        assert np.all(sim.x < 1.0)


class TestValidationAndFom:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ParticleMesh3d(n_grid=4)
        with pytest.raises(ConfigurationError):
            ParticleMesh3d(n_grid=16, n_particles=1)

    def test_fom(self):
        r = measure_fom(n_grid=16, n_particles=512, n_steps=2)
        assert r["fom"] > 0
        assert r["momentum_drift"] < 1e-10
        assert r["mass_error"] < 1e-10
