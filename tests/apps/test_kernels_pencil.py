"""Distributed pencil/slab FFT tests (GESTS's custom 3-D FFT)."""

import numpy as np
import pytest

from repro.apps.kernels.pencil import PencilFft, SlabFft
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(7)
    return rng.standard_normal((16, 16, 16))


class TestCorrectness:
    def test_slab_matches_fftn(self, field):
        for p in (1, 2, 4, 8):
            dist = SlabFft(16, p)
            assert np.allclose(dist.forward(field), np.fft.fftn(field))

    def test_pencil_matches_fftn(self, field):
        for pr, pc in ((1, 1), (2, 2), (2, 4), (4, 4)):
            dist = PencilFft(16, pr, pc)
            assert np.allclose(dist.forward(field), np.fft.fftn(field))

    def test_single_rank_moves_nothing(self, field):
        dist = SlabFft(16, 1)
        dist.forward(field)
        assert dist.bytes_moved == 0
        pencil = PencilFft(16, 1, 1)
        pencil.forward(field)
        assert pencil.bytes_moved == 0


class TestCommunicationVolumes:
    def test_pencil_moves_more_than_slab_at_equal_ranks(self, field):
        # the GESTS trade: 2-D does two transposes, 1-D does one — which
        # is why the paper's 1-D decomposition wins (5.87x vs 5.06x).
        slab = SlabFft(16, 4)
        slab.forward(field)
        pencil = PencilFft(16, 2, 2)
        pencil.forward(field)
        assert pencil.bytes_moved > slab.bytes_moved

    def test_transpose_counts(self):
        assert SlabFft(16, 4).transposes_per_transform == 1
        assert PencilFft(16, 2, 2).transposes_per_transform == 2

    def test_volume_grows_with_rank_count(self, field):
        small = SlabFft(16, 2)
        small.forward(field)
        big = SlabFft(16, 8)
        big.forward(field)
        # fraction exchanged grows as (p-1)/p
        assert big.bytes_moved > small.bytes_moved

    def test_pencil_exchanges_stay_in_communicators(self, field):
        """A pencil transpose moves (c-1)/c of the data within each
        row/column of the rank grid — strictly less than a global
        all-to-all of the same total size."""
        pencil = PencilFft(16, 4, 4)
        pencil.forward(field)
        total_bytes = field.nbytes * 2  # complex128 field
        # 4 transposes (2 out, 2 back) x 3/4 of the data each
        assert pencil.bytes_moved == pytest.approx(4 * total_bytes * 3 / 4,
                                                   rel=0.01)


class TestScatter:
    def test_slab_scatter_partitions(self, field):
        slabs = SlabFft(16, 4).scatter(field)
        assert len(slabs) == 4
        assert np.allclose(np.concatenate(slabs, axis=0), field)

    def test_pencil_scatter_partitions(self, field):
        pencils = PencilFft(16, 2, 2).scatter(field)
        assert len(pencils) == 4
        assert sum(p.size for p in pencils.values()) == field.size

    def test_validation(self, field):
        with pytest.raises(ConfigurationError):
            SlabFft(16, 5)
        with pytest.raises(ConfigurationError):
            PencilFft(16, 3, 2)
        with pytest.raises(ConfigurationError):
            SlabFft(16, 2).scatter(np.zeros((8, 8, 8)))
