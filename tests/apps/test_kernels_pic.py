"""PIC kernel physics tests."""

import numpy as np
import pytest

from repro.apps.kernels.pic import (ElectrostaticPic1d, Fdtd2d,
                                    measure_update_rate)
from repro.errors import ConfigurationError, SimulationError


class TestElectrostaticPic:
    def test_plasma_oscillation_frequency(self):
        # The canonical PIC validation: a cold perturbed plasma oscillates
        # at w_p (within grid/leapfrog dispersion error).
        sim = ElectrostaticPic1d(n_cells=64, particles_per_cell=20, dt=0.05)
        sim.perturb(amplitude=1e-3)
        measured = sim.measure_oscillation_frequency(n_steps=400)
        assert measured == pytest.approx(sim.plasma_frequency, rel=0.10)

    def test_charge_neutrality_exact(self):
        sim = ElectrostaticPic1d()
        assert abs(sim.total_charge()) < 1e-12
        sim.perturb()
        for _ in range(10):
            sim.step()
        assert abs(sim.total_charge()) < 1e-10

    def test_unperturbed_plasma_stays_quiet(self):
        sim = ElectrostaticPic1d()
        for _ in range(20):
            sim.step()
        assert sim.field_energy() < 1e-20

    def test_energy_bounded_during_oscillation(self):
        sim = ElectrostaticPic1d(dt=0.02)
        sim.perturb(amplitude=1e-3)
        sim.step()
        e0 = sim.total_energy()
        for _ in range(200):
            sim.step()
        assert sim.total_energy() == pytest.approx(e0, rel=0.05)

    def test_field_solve_satisfies_gauss_law(self):
        sim = ElectrostaticPic1d(n_cells=32)
        sim.perturb(amplitude=1e-2)
        rho = sim.deposit()
        e = sim.solve_field(rho)
        div_e = (np.roll(e, -1) - np.roll(e, 1)) / (2 * sim.dx)
        # spectral solve: divergence matches rho up to grid differencing
        assert np.corrcoef(div_e, rho)[0, 1] > 0.99

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ElectrostaticPic1d(n_cells=2)


class TestFdtd:
    def test_energy_conservation(self):
        # Yee staggering means the naive E^2+H^2 sum oscillates by a few
        # percent (E and H live at different half-steps); it must not drift.
        f = Fdtd2d(nx=48, ny=48)
        f.inject_pulse()
        e0 = f.energy()
        energies = []
        for _ in range(300):
            f.step()
            energies.append(f.energy())
        assert np.mean(energies[-50:]) == pytest.approx(e0, rel=0.05)
        assert max(energies) / min(energies) < 1.15

    def test_cfl_violation_rejected(self):
        with pytest.raises(SimulationError):
            Fdtd2d(courant=0.8)

    def test_pulse_propagates(self):
        f = Fdtd2d(nx=64, ny=64)
        f.inject_pulse(width=3.0)
        center0 = abs(f.ez[32, 32])
        for _ in range(40):
            f.step()
        # the pulse has left the centre
        assert abs(f.ez[32, 32]) < center0 / 2

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            Fdtd2d(nx=2)


class TestFomMeasurement:
    def test_measure_update_rate(self):
        r = measure_update_rate(n_cells=32, particles_per_cell=10, n_steps=10)
        assert r["fom"] > 0
        assert r["charge_error"] < 1e-9
        assert r["particle_updates_per_s"] > r["cell_updates_per_s"]
