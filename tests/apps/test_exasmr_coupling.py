"""ExaSMR Picard-coupling tests (Monte Carlo <-> CFD)."""

import pytest

from repro.apps.exasmr import ExaSMR, PicardCoupling


class TestPicardIteration:
    @pytest.fixture(scope="class")
    def result(self):
        return PicardCoupling(histories=1200).run(rng=1)

    def test_converges(self, result):
        assert result["converged"] == 1.0
        assert result["iterations"] <= 12

    def test_keff_physical(self, result):
        assert 0.7 < result["k_eff"] < 1.1

    def test_coolant_heats_up(self, result):
        # outlet warmer than the (zero-temperature) inlet
        assert result["outlet_temperature"] > 0.0
        assert result["mean_temperature"] > 0.0

    def test_doppler_feedback_lowers_k(self):
        # With feedback the converged k is below the no-feedback k.
        no_fb = PicardCoupling(histories=1200, doppler_coefficient=0.0)
        with_fb = PicardCoupling(histories=1200, doppler_coefficient=0.3)
        k_no = no_fb.run(rng=2)["k_eff"]
        k_fb = with_fb.run(rng=2)["k_eff"]
        assert k_fb < k_no


class TestCombinedFom:
    def test_harmonic_average_is_70(self):
        # "yielding a combined FOM of 70"
        foms = ExaSMR().component_foms()
        assert foms["combined"] == pytest.approx(70.0, abs=0.1)
        assert foms["shift"] == 54.0
        assert foms["nekrs"] == 99.6

    def test_combined_below_both_components_mean(self):
        foms = ExaSMR().component_foms()
        assert foms["combined"] < (foms["shift"] + foms["nekrs"]) / 2
        assert foms["shift"] < foms["combined"] < foms["nekrs"]
