"""LSMS multiple-scattering kernel tests."""

import numpy as np
import pytest

from repro.apps.kernels.scattering import (ScatteringProblem,
                                           block_size_for_lmax,
                                           linear_scaling_times, measure_fom,
                                           residual, solve_tau)
from repro.errors import ConfigurationError


class TestBlockSizes:
    def test_lmax7_gives_128(self):
        # the paper's l_max = 7 benchmark case
        assert block_size_for_lmax(7) == 128

    def test_small_lmax(self):
        assert block_size_for_lmax(0) == 2
        assert block_size_for_lmax(3) == 32

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            block_size_for_lmax(-1)


class TestTauSolve:
    def test_solution_satisfies_equation(self):
        prob = ScatteringProblem(n_atoms=3, liz_size=6, lmax=2, rng=1)
        for atom in range(3):
            tau = solve_tau(prob, atom)
            assert residual(prob, atom, tau) < 1e-10

    def test_tau_is_complex_dense(self):
        prob = ScatteringProblem(n_atoms=1, liz_size=4, lmax=2, rng=2)
        tau = solve_tau(prob, 0)
        assert tau.dtype == np.complex128
        assert tau.shape == (prob.matrix_dim, prob.matrix_dim)

    def test_weak_scattering_limit(self):
        # As t -> 0, tau -> t (single-scattering limit).
        prob = ScatteringProblem(n_atoms=1, liz_size=4, lmax=1, rng=3)
        prob.t[0] = prob.t[0] * 1e-6
        tau = solve_tau(prob, 0)
        assert np.allclose(tau, prob.t[0], atol=1e-9)


class TestLinearScaling:
    def test_time_grows_subquadratically(self):
        # LSMS's headline property: O(atoms), not O(atoms^3).
        times = linear_scaling_times([2, 8], lmax=2, liz_size=6, rng=4)
        (n1, t1), (n2, t2) = times
        ratio = (t2 / t1) / (n2 / n1)
        assert ratio < 3.0   # linear would be 1.0; cubic would be 16

    def test_returns_requested_counts(self):
        times = linear_scaling_times([2, 4], lmax=1, liz_size=4)
        assert [n for n, _ in times] == [2, 4]


class TestValidationAndFom:
    def test_problem_validation(self):
        with pytest.raises(ConfigurationError):
            ScatteringProblem(n_atoms=0)

    def test_fom(self):
        r = measure_fom(n_atoms=2, lmax=2, liz_size=6)
        assert r["fom"] > 0
        assert r["max_residual"] < 1e-10
