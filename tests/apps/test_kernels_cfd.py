"""CFD (heat-advection) kernel tests."""

import numpy as np
import pytest

from repro.apps.kernels.cfd import HeatAdvectionSolver, measure_fom
from repro.errors import ConfigurationError


class TestPhysics:
    def test_no_source_stays_at_inlet_temperature(self):
        s = HeatAdvectionSolver(nx=16, ny=24)
        s.run(200)
        assert s.mean_temperature() == pytest.approx(0.0, abs=1e-9)

    def test_heating_raises_outlet_temperature(self):
        s = HeatAdvectionSolver(nx=16, ny=32)
        q = np.zeros((16, 32))
        q[:, 8:16] = 1.0
        s.set_heat_source(q)
        s.run(600)
        assert s.outlet_temperature() > 0.0

    def test_steady_state_exists(self):
        s = HeatAdvectionSolver(nx=12, ny=24)
        q = np.zeros((12, 24))
        q[4:8, 6:12] = 0.5
        s.set_heat_source(q)
        steps = s.run_to_steady(tol=1e-8)
        assert steps > 1
        before = s.T.copy()
        s.run(50)
        assert np.max(np.abs(s.T - before)) < 1e-5

    def test_advection_moves_heat_downstream(self):
        s = HeatAdvectionSolver(nx=12, ny=48, velocity=2.0)
        q = np.zeros((12, 48))
        q[:, 10:14] = 1.0
        s.set_heat_source(q)
        s.run(400)
        downstream = s.T[:, 20:].mean()
        upstream = s.T[:, :8].mean()
        assert downstream > 5 * max(upstream, 1e-12)

    def test_more_heat_hotter(self):
        results = []
        for scale in (0.5, 1.0):
            s = HeatAdvectionSolver(nx=12, ny=24)
            q = np.full((12, 24), scale)
            s.set_heat_source(q)
            s.run(300)
            results.append(s.outlet_temperature())
        assert results[1] > results[0]


class TestValidation:
    def test_grid_size(self):
        with pytest.raises(ConfigurationError):
            HeatAdvectionSolver(nx=2)

    def test_source_shape(self):
        s = HeatAdvectionSolver(nx=8, ny=8)
        with pytest.raises(ConfigurationError):
            s.set_heat_source(np.zeros((4, 4)))

    def test_source_nonnegative(self):
        s = HeatAdvectionSolver(nx=8, ny=8)
        with pytest.raises(ConfigurationError):
            s.set_heat_source(np.full((8, 8), -1.0))

    def test_stability_limit_enforced(self):
        s = HeatAdvectionSolver(nx=8, ny=8, alpha=10.0)
        assert s.dt <= 0.4 * s.dx ** 2 / (4 * 10.0) * 1.001


class TestFom:
    def test_dof_rate(self):
        r = measure_fom(nx=16, ny=24, n_steps=50)
        assert r["fom"] > 0
        assert r["outlet_temperature"] >= 0
