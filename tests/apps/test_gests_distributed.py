"""GESTS distributed-FFT integration check (app-level hook)."""

import pytest

from repro.apps.gests import Gests


class TestDistributedFftHook:
    def test_both_decompositions_exact(self):
        result = Gests().distributed_fft_check(n=16)
        assert result["slab_error"] < 1e-9
        assert result["pencil_error"] < 1e-9

    def test_pencil_moves_about_twice_the_bytes(self):
        # two transposes vs one: the 1-D vs 2-D mechanism in Table 6
        result = Gests().distributed_fft_check(n=16)
        ratio = result["pencil_bytes_moved"] / result["slab_bytes_moved"]
        assert 1.3 < ratio < 2.5

    def test_transpose_volume_model_agrees_with_kernel_trend(self):
        # the analytic model in spectral.py predicts 2x for 2-D; the real
        # kernel shows the same direction
        volumes = Gests().transpose_volume(ranks=64)
        assert volumes["2d"] == pytest.approx(2 * volumes["1d"])
