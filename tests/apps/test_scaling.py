"""Weak-scaling model tests — the §4.4 efficiency claims."""

import pytest

from repro.apps.scaling import (PAPER_EFFICIENCIES, CommPattern,
                                WeakScalingModel)
from repro.core.baselines import SUMMIT
from repro.errors import ConfigurationError


class TestPaperEfficiencies:
    def test_picongpu_90pct_at_9216_nodes(self):
        nodes, eff = PAPER_EFFICIENCIES["PIConGPU"]
        assert WeakScalingModel.picongpu().efficiency(nodes) == pytest.approx(
            eff, abs=0.02)

    def test_shift_97_8pct_at_8192_nodes(self):
        nodes, eff = PAPER_EFFICIENCIES["Shift"]
        assert WeakScalingModel.shift().efficiency(nodes) == pytest.approx(
            eff, abs=0.01)

    def test_athenapk_frontier_vs_summit_gap(self):
        # "96% and 48% parallel efficiency on Frontier and Summit ...
        # attributed to Frontier's improved node design, specifically each
        # GPU having a network interface card connected to it"
        nodes_f, eff_f = PAPER_EFFICIENCIES["AthenaPK-Frontier"]
        nodes_s, eff_s = PAPER_EFFICIENCIES["AthenaPK-Summit"]
        frontier = WeakScalingModel.athenapk()
        summit = WeakScalingModel.athenapk(machine=SUMMIT)
        assert frontier.efficiency(nodes_f) == pytest.approx(eff_f, abs=0.02)
        assert summit.efficiency(nodes_s) == pytest.approx(eff_s, abs=0.03)

    def test_the_gap_comes_from_the_node_design(self):
        """Same halo volume and compute; only the staging/rail sharing
        differ — remove Summit's staging and the gap mostly closes."""
        summit_fixed = WeakScalingModel.athenapk(machine=SUMMIT)
        hypothetical = WeakScalingModel(
            pattern=summit_fixed.pattern,
            compute_seconds=summit_fixed.compute_seconds,
            comm_bytes_per_rank=summit_fixed.comm_bytes_per_rank,
            machine=SUMMIT, ppn=6, staging_factor=1.0)
        assert hypothetical.efficiency(4600) > 0.8
        assert summit_fixed.efficiency(4600) < 0.55


class TestMechanics:
    def test_efficiency_decreases_with_scale(self):
        m = WeakScalingModel.picongpu()
        effs = [e for _, e in m.curve([1, 64, 512, 4096, 9216])]
        assert effs == sorted(effs, reverse=True)
        assert effs[0] == 1.0

    def test_single_node_uses_intra_node_links(self):
        m = WeakScalingModel.athenapk()
        assert m.comm_seconds(1) < m.comm_seconds(2)

    def test_overlap_hides_communication(self):
        base = WeakScalingModel(CommPattern.HALO, 1e-2, 1e6)
        hidden = WeakScalingModel(CommPattern.HALO, 1e-2, 1e6, overlap=0.5)
        assert hidden.efficiency(4096) > base.efficiency(4096)

    def test_gests_2d_moves_more_and_scales_worse(self):
        one_d = WeakScalingModel.gests("1d")
        two_d = WeakScalingModel.gests("2d")
        assert two_d.comm_bytes_per_rank == 2 * one_d.comm_bytes_per_rank
        assert two_d.efficiency(9216) < one_d.efficiency(9216)

    def test_allreduce_imbalance_term(self):
        balanced = WeakScalingModel(CommPattern.ALLREDUCE, 0.1, 1e6)
        imbalanced = WeakScalingModel(CommPattern.ALLREDUCE, 0.1, 1e6,
                                      imbalance_per_doubling=0.01)
        assert imbalanced.efficiency(8192) < balanced.efficiency(8192)

    def test_step_time_composition(self):
        m = WeakScalingModel.shift()
        assert m.step_time(64) == pytest.approx(
            m.compute_seconds + m.comm_seconds(64))


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            WeakScalingModel(CommPattern.HALO, 0.0, 1e6)
        with pytest.raises(ConfigurationError):
            WeakScalingModel(CommPattern.HALO, 1.0, 1e6, overlap=1.0)
        with pytest.raises(ConfigurationError):
            WeakScalingModel(CommPattern.HALO, 1.0, 1e6, staging_factor=0.5)
        with pytest.raises(ConfigurationError):
            WeakScalingModel.gests("3d")
        with pytest.raises(ConfigurationError):
            WeakScalingModel.shift().comm_seconds(0)
